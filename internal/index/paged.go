// PagedStore: the out-of-core CoefficientSource.
//
// Coefficient payloads live in a persist segment file — fixed 128-byte
// records packed into CRC'd pages — and only the page-cache working
// set, the offset table, and the footer metadata stay resident. The
// index (R*-trees over support MBBs) is built by streaming the segment
// once and remains fully resident; queries touch payload pages only
// when a frame actually reads coefficients (filtering and encoding).
//
// The record encoding is full-fidelity: every float64 of the in-memory
// wavelet.Coefficient round-trips exactly, so a paged scene serves
// byte-identical responses to the in-memory Store over the same
// dataset. (The 48-byte wire encoding narrows Pos/Value to float32 at
// the protocol layer for both stores alike.)
package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/persist"
	"repro/internal/wavelet"
)

// ErrPageUnavailable reports that a coefficient's backing page could
// not be read — a transient I/O fault that exhausted the pager's
// retries, or CRC-verified permanent corruption that quarantined the
// page. It flows out of Coeff/PinIDs through the CoefficientSource
// failure contract; serving layers respond by withholding the affected
// coefficients (ABR Dropped semantics), never by panicking, so frames
// that touch only healthy pages are unaffected and withheld
// coefficients are re-delivered once the page heals.
var ErrPageUnavailable = errors.New("index: coefficient page unavailable")

// pageUnavailable wraps a pager failure for one page, preserving both
// the ErrPageUnavailable sentinel and the underlying cause (which keeps
// persist.ErrCorrupt visible through errors.Is for quarantined pages).
func pageUnavailable(page int32, err error) error {
	return fmt.Errorf("%w: page %d: %w", ErrPageUnavailable, page, err)
}

// CoeffRecordSize is the fixed serialized size of one coefficient in a
// segment file: ids/level/parent (24B), value (8B), delta (24B), pos
// (24B), support box (48B).
const CoeffRecordSize = 128

// AppendCoeffRecord serializes one coefficient in segment-record form.
func AppendCoeffRecord(dst []byte, c *wavelet.Coefficient) []byte {
	var rec [CoeffRecordSize]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(c.Object))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(c.Vertex))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(int32(c.Level)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(c.Parent.A))
	binary.LittleEndian.PutUint32(rec[16:20], uint32(c.Parent.B))
	// rec[20:24] reserved, zero
	binary.LittleEndian.PutUint64(rec[24:32], math.Float64bits(c.Value))
	putVec3(rec[32:56], c.Delta)
	putVec3(rec[56:80], c.Pos)
	putVec3(rec[80:104], c.Support.Min)
	putVec3(rec[104:128], c.Support.Max)
	return append(dst, rec[:]...)
}

// decodeCoeffRecord is the inverse of AppendCoeffRecord.
func decodeCoeffRecord(rec []byte, c *wavelet.Coefficient) {
	c.Object = int32(binary.LittleEndian.Uint32(rec[0:4]))
	c.Vertex = int32(binary.LittleEndian.Uint32(rec[4:8]))
	c.Level = int8(int32(binary.LittleEndian.Uint32(rec[8:12])))
	c.Parent.A = int32(binary.LittleEndian.Uint32(rec[12:16]))
	c.Parent.B = int32(binary.LittleEndian.Uint32(rec[16:20]))
	c.Value = math.Float64frombits(binary.LittleEndian.Uint64(rec[24:32]))
	c.Delta = getVec3(rec[32:56])
	c.Pos = getVec3(rec[56:80])
	c.Support.Min = getVec3(rec[80:104])
	c.Support.Max = getVec3(rec[104:128])
}

func putVec3(dst []byte, v geom.Vec3) {
	binary.LittleEndian.PutUint64(dst[0:8], math.Float64bits(v.X))
	binary.LittleEndian.PutUint64(dst[8:16], math.Float64bits(v.Y))
	binary.LittleEndian.PutUint64(dst[16:24], math.Float64bits(v.Z))
}

func getVec3(src []byte) geom.Vec3 {
	return geom.Vec3{
		X: math.Float64frombits(binary.LittleEndian.Uint64(src[0:8])),
		Y: math.Float64frombits(binary.LittleEndian.Uint64(src[8:16])),
		Z: math.Float64frombits(binary.LittleEndian.Uint64(src[16:24])),
	}
}

const (
	// segMetaMagic identifies a coefficient-segment meta blob ("MACO").
	segMetaMagic   = uint32(0x4F43414D)
	segMetaVersion = uint32(1)
	segMetaFixed   = 24 + 48 // six u32 + bounds (6 × f64)
)

// EncodeSegmentMeta builds the footer meta blob for a coefficient
// segment: scene shape (levels, base verts), the exact dataset bounds
// (stored verbatim so a paged scene's handshake space is float-identical
// to the in-memory store's), and the per-object id offset table.
func EncodeSegmentMeta(levels, baseVerts int, bounds geom.Rect3, offsets []int64) []byte {
	meta := make([]byte, 0, segMetaFixed+8*len(offsets))
	meta = binary.LittleEndian.AppendUint32(meta, segMetaMagic)
	meta = binary.LittleEndian.AppendUint32(meta, segMetaVersion)
	meta = binary.LittleEndian.AppendUint32(meta, uint32(levels))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(baseVerts))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(len(offsets)))
	meta = binary.LittleEndian.AppendUint32(meta, 0) // reserved
	for _, v := range [6]float64{bounds.Min.X, bounds.Min.Y, bounds.Min.Z,
		bounds.Max.X, bounds.Max.Y, bounds.Max.Z} {
		meta = binary.LittleEndian.AppendUint64(meta, math.Float64bits(v))
	}
	for _, off := range offsets {
		meta = binary.LittleEndian.AppendUint64(meta, uint64(off))
	}
	return meta
}

// decodeSegmentMeta parses and validates a coefficient-segment meta
// blob against the segment's record count.
func decodeSegmentMeta(meta []byte, total int64) (levels, baseVerts int, bounds geom.Rect3, offsets []int64, err error) {
	if len(meta) < segMetaFixed {
		return 0, 0, bounds, nil, fmt.Errorf("index: segment meta of %d bytes is too short", len(meta))
	}
	if m := binary.LittleEndian.Uint32(meta[0:4]); m != segMetaMagic {
		return 0, 0, bounds, nil, fmt.Errorf("index: bad segment meta magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(meta[4:8]); v != segMetaVersion {
		return 0, 0, bounds, nil, fmt.Errorf("index: unsupported segment meta version %d", v)
	}
	levels = int(binary.LittleEndian.Uint32(meta[8:12]))
	baseVerts = int(binary.LittleEndian.Uint32(meta[12:16]))
	numObjects := int64(binary.LittleEndian.Uint32(meta[16:20]))
	if int64(len(meta)) != segMetaFixed+8*numObjects {
		return 0, 0, bounds, nil, fmt.Errorf("index: segment meta claims %d objects in %d bytes", numObjects, len(meta))
	}
	f := func(off int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(meta[24+8*off:]))
	}
	bounds = geom.Rect3{
		Min: geom.Vec3{X: f(0), Y: f(1), Z: f(2)},
		Max: geom.Vec3{X: f(3), Y: f(4), Z: f(5)},
	}
	offsets = make([]int64, numObjects)
	prev := int64(0)
	for i := range offsets {
		offsets[i] = int64(binary.LittleEndian.Uint64(meta[segMetaFixed+8*i:]))
		if offsets[i] < prev || offsets[i] > total {
			return 0, 0, bounds, nil, fmt.Errorf("index: segment offset table not monotone at object %d", i)
		}
		prev = offsets[i]
	}
	if numObjects > 0 && offsets[0] != 0 {
		return 0, 0, bounds, nil, fmt.Errorf("index: segment offset table starts at %d, want 0", offsets[0])
	}
	if numObjects == 0 && total != 0 {
		return 0, 0, bounds, nil, fmt.Errorf("index: segment has %d coefficients but no objects", total)
	}
	return levels, baseVerts, bounds, offsets, nil
}

// BuildSegment streams an in-memory source into a segment file at
// path (atomically). levels is the subdivision depth to record for the
// scene handshake; pageSize 0 uses the persist default.
func BuildSegment(path string, src CoefficientSource, levels, pageSize int) error {
	spec := persist.SegmentSpec{PageSize: pageSize, RecordSize: CoeffRecordSize}
	return persist.WriteSegment(path, spec, func(a *persist.SegmentAppender) ([]byte, error) {
		offsets := make([]int64, src.NumObjects())
		for i := range offsets {
			offsets[i] = src.ID(int32(i), 0)
		}
		total := src.NumCoeffs()
		var rec []byte
		for id := int64(0); id < total; id++ {
			c, err := src.Coeff(id)
			if err != nil {
				return nil, fmt.Errorf("index: segment build at id %d: %w", id, err)
			}
			rec = AppendCoeffRecord(rec[:0], c)
			if err := a.Append(rec); err != nil {
				return nil, err
			}
		}
		return EncodeSegmentMeta(levels, src.BaseVerts(), src.Bounds(), offsets), nil
	})
}

// PagedConfig configures a PagedStore.
type PagedConfig struct {
	// CacheBytes bounds resident decoded payload bytes, accounted in
	// serialized record bytes (≤0 → persist.DefaultPageCacheBytes).
	CacheBytes int64
	// Debug evicts and poisons pages on unpin-to-zero, so any held
	// coefficient pointer read after its pin is released fails loudly
	// (NaN values, object id -1) instead of silently serving stale data.
	Debug bool
	// RetryMax bounds the pager's re-reads after a transient page-read
	// fault (0 → persist.DefaultRetryMax, negative → none).
	RetryMax int
	// RetryBackoff is the pager's first-retry delay, doubling per retry
	// (0 → persist.DefaultRetryBackoff, negative → none).
	RetryBackoff time.Duration
}

// PagedStore serves coefficients from a paged segment file. Only the
// offset table, footer metadata, and the bounded page cache are
// resident. It implements PinningSource; serving layers that hold
// coefficients across a frame must read through NewPins.
type PagedStore struct {
	seg     *persist.Segment
	pager   *persist.Pager
	offsets []int64
	total   int64
	perPage int64
	levels  int
	base    int
	bounds  geom.Rect3
	debug   bool
}

var _ PinningSource = (*PagedStore)(nil)

// OpenPaged opens a coefficient segment file as a PagedStore.
func OpenPaged(path string, cfg PagedConfig) (*PagedStore, error) {
	seg, err := persist.OpenSegment(path)
	if err != nil {
		return nil, err
	}
	ps, err := newPaged(seg, cfg)
	if err != nil {
		seg.Close()
		return nil, fmt.Errorf("index: segment %s: %w", path, err)
	}
	return ps, nil
}

// NewPagedSegment wraps an already-open segment — typically one layered
// over a fault-injecting or otherwise custom io.ReaderAt — as a
// PagedStore. The store takes ownership: its Close closes the segment.
func NewPagedSegment(seg *persist.Segment, cfg PagedConfig) (*PagedStore, error) {
	return newPaged(seg, cfg)
}

func newPaged(seg *persist.Segment, cfg PagedConfig) (*PagedStore, error) {
	if seg.RecordSize() != CoeffRecordSize {
		return nil, fmt.Errorf("index: segment record size %d, want %d", seg.RecordSize(), CoeffRecordSize)
	}
	levels, base, bounds, offsets, err := decodeSegmentMeta(seg.Meta(), seg.NumRecords())
	if err != nil {
		return nil, err
	}
	ps := &PagedStore{
		seg:     seg,
		offsets: offsets,
		total:   seg.NumRecords(),
		perPage: int64(seg.RecordsPerPage()),
		levels:  levels,
		base:    base,
		bounds:  bounds,
		debug:   cfg.Debug,
	}
	ps.pager = persist.NewPager(seg, persist.PagerConfig{
		CacheBytes:   cfg.CacheBytes,
		Debug:        cfg.Debug,
		RetryMax:     cfg.RetryMax,
		RetryBackoff: cfg.RetryBackoff,
		Decode: func(raw []byte, records int) (any, int64, error) {
			slab := make([]wavelet.Coefficient, records)
			for i := range slab {
				decodeCoeffRecord(raw[i*CoeffRecordSize:(i+1)*CoeffRecordSize], &slab[i])
			}
			return slab, int64(records) * CoeffRecordSize, nil
		},
		Poison: func(decoded any) {
			slab := decoded.([]wavelet.Coefficient)
			nan := math.NaN()
			for i := range slab {
				slab[i] = wavelet.Coefficient{
					Object: -1, Vertex: -1, Level: -1,
					Parent: mesh.Edge{A: -1, B: -1},
					Value:  nan,
					Delta:  geom.Vec3{X: nan, Y: nan, Z: nan},
					Pos:    geom.Vec3{X: nan, Y: nan, Z: nan},
				}
			}
		},
	})
	return ps, nil
}

// Close releases the underlying segment file. The store must be
// quiescent: no in-flight Coeff calls or live pins.
func (ps *PagedStore) Close() error { return ps.seg.Close() }

// Levels returns the subdivision depth recorded when the segment was
// built; the scene handshake announces it.
func (ps *PagedStore) Levels() int { return ps.levels }

// PagerStats returns a snapshot of the store's paging counters.
func (ps *PagedStore) PagerStats() persist.PagerStats { return ps.pager.Stats() }

// Segment exposes the underlying segment (geometry and page addressing;
// fault harnesses use PageOffset to target one page).
func (ps *PagedStore) Segment() *persist.Segment { return ps.seg }

// VerifyPages scrubs every page against the segment's CRC directory,
// quarantining pages whose corruption survives the pager's retry cycle
// — the same bookkeeping a faulting Coeff uses. It returns the sorted
// list of quarantined pages and the first non-corruption read failure,
// if any (cmd/server's -verify-pages runs this at boot).
func (ps *PagedStore) VerifyPages() ([]int, error) { return ps.pager.Scrub() }

// NumObjects returns the number of stored objects.
func (ps *PagedStore) NumObjects() int { return len(ps.offsets) }

// BaseVerts returns the shared base-mesh vertex count from the segment
// metadata.
func (ps *PagedStore) BaseVerts() int { return ps.base }

// NumCoeffs returns the total coefficient count.
func (ps *PagedStore) NumCoeffs() int64 { return ps.total }

// SizeBytes returns the total serialized payload, in the same wire
// accounting the in-memory Store uses.
func (ps *PagedStore) SizeBytes() int64 { return ps.total * wavelet.WireBytes }

// Bounds returns the dataset bounding box recorded at build time
// (float-identical to the source store's Bounds).
func (ps *PagedStore) Bounds() geom.Rect3 { return ps.bounds }

// ID returns the global id of a coefficient.
func (ps *PagedStore) ID(object, vertex int32) int64 {
	return ps.offsets[object] + int64(vertex)
}

// Neighbors is unsupported: a paged store does not retain final meshes,
// so the naive index (the only Neighbors consumer) cannot run over it.
func (ps *PagedStore) Neighbors(object, vertex int32) []int32 {
	panic("index: PagedStore does not retain final meshes; the naive index needs an in-memory Store")
}

// checkID panics descriptively on an out-of-range id (same contract as
// Store.objectOf).
func (ps *PagedStore) checkID(id int64) {
	if id < 0 || id >= ps.total {
		panic(fmt.Sprintf("index: coefficient id %d out of range [0, %d)", id, ps.total))
	}
}

// pin faults in the page holding id and returns its decoded slab plus
// the page number. An I/O or corruption error is NOT fatal: it surfaces
// as ErrPageUnavailable so serving layers can withhold the affected
// coefficients while every other page keeps serving — a single bad
// sector must degrade one frame's coverage, not kill the process (the
// CRC directory still makes damage loud rather than wrong).
func (ps *PagedStore) pin(id int64) ([]wavelet.Coefficient, int32, error) {
	page := int32(id / ps.perPage)
	v, err := ps.pager.Pin(int(page))
	if err != nil {
		return nil, page, pageUnavailable(page, err)
	}
	return v.([]wavelet.Coefficient), page, nil
}

// Coeff resolves a global id for immediate use (see the
// CoefficientSource contract). The page is pinned only for the duration
// of the call; in debug mode the returned value is a private copy so
// that a legal immediate read cannot observe the poisoned slab.
func (ps *PagedStore) Coeff(id int64) (*wavelet.Coefficient, error) {
	ps.checkID(id)
	slab, page, err := ps.pin(id)
	if err != nil {
		return nil, err
	}
	c := &slab[id%ps.perPage]
	if ps.debug {
		cp := *c
		c = &cp
	}
	ps.pager.Unpin(int(page))
	return c, nil
}

// NewPins returns an empty frame-scoped pin set. A Pins is reusable
// across frames (Release keeps its storage) but not safe for concurrent
// use; each session/connection owns its own.
func (ps *PagedStore) NewPins() *Pins {
	return &Pins{ps: ps, lastPage: -1, slabs: make(map[int32][]wavelet.Coefficient)}
}

// PinIDs pins the pages backing the given ascending id list, keeping
// them resident until the matching UnpinIDs. This is the hot-region
// pre-pin hook: the hotcache pins a cached region's pages on insert and
// unpins on eviction or epoch invalidation, making cache policy and
// paging policy one mechanism. On an unreadable page PinIDs unwinds the
// pins it already took and reports ErrPageUnavailable — an all-or-
// nothing contract, so a failed pre-pin leaks no references and the
// caller simply skips caching the region.
func (ps *PagedStore) PinIDs(ids []int64) error {
	last := int32(-1)
	for i, id := range ids {
		ps.checkID(id)
		page := int32(id / ps.perPage)
		if page == last {
			continue
		}
		if _, err := ps.pager.Pin(int(page)); err != nil {
			// The same consecutive-dedup walk over the prefix releases
			// exactly the pins taken above.
			ps.UnpinIDs(ids[:i])
			return pageUnavailable(page, err)
		}
		last = page
	}
	return nil
}

// UnpinIDs releases the pins PinIDs took for the same ascending id
// list.
func (ps *PagedStore) UnpinIDs(ids []int64) {
	last := int32(-1)
	for _, id := range ids {
		ps.checkID(id)
		page := int32(id / ps.perPage)
		if page == last {
			continue
		}
		ps.pager.Unpin(int(page))
		last = page
	}
}

// Pins is a frame-scoped pin set over one PagedStore: Coeff reads
// through it keep every touched page resident (and its pointers stable)
// until Release. The single-entry fast path makes the common
// ascending-id scan one map lookup per page, not per coefficient.
type Pins struct {
	ps       *PagedStore
	pages    []int32
	slabs    map[int32][]wavelet.Coefficient
	lastPage int32
	lastSlab []wavelet.Coefficient
}

// Coeff resolves a global id; the backing page stays pinned until
// Release, so the pointer is valid for the frame. An unreadable page
// reports ErrPageUnavailable without disturbing the pages already
// pinned — the caller withholds that coefficient and carries on.
func (p *Pins) Coeff(id int64) (*wavelet.Coefficient, error) {
	p.ps.checkID(id)
	page := int32(id / p.ps.perPage)
	idx := id % p.ps.perPage
	if page == p.lastPage {
		return &p.lastSlab[idx], nil
	}
	slab, ok := p.slabs[page]
	if !ok {
		var err error
		slab, _, err = p.ps.pin(id)
		if err != nil {
			return nil, err
		}
		p.slabs[page] = slab
		p.pages = append(p.pages, page)
	}
	p.lastPage = page
	p.lastSlab = slab
	return &slab[idx], nil
}

// Release unpins every page this set touched and resets it for reuse.
func (p *Pins) Release() {
	for _, page := range p.pages {
		p.ps.pager.Unpin(int(page))
		delete(p.slabs, page)
	}
	p.pages = p.pages[:0]
	p.lastPage = -1
	p.lastSlab = nil
}
