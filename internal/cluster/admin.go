package cluster

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// ServeAdmin answers control requests on lis until it closes: one
// request per connection, one reply, hang up. Status reports the
// gateway's routing and health view; drain runs the controller's drain
// state machine (which requires co-located backends — a pure proxy
// deployment gets a clean error, not a half-drain).
func (c *Controller) ServeAdmin(lis net.Listener) error {
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go c.handleAdmin(conn)
	}
}

func (c *Controller) handleAdmin(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	reply := func(rep ControlReply) {
		conn.Write(EncodeControlReply(rep))
	}
	req, err := ReadControlRequest(conn)
	if err != nil {
		reply(ControlReply{OK: false, Msg: "bad control request"})
		return
	}
	switch req.Op {
	case OpStatus:
		reply(ControlReply{OK: true, Msg: c.gw.StatusString()})
	case OpDrain:
		rep, err := c.Drain(req.Scene, req.Target)
		if err != nil {
			reply(ControlReply{OK: false, Msg: err.Error()})
			return
		}
		reply(ControlReply{OK: true, Msg: fmt.Sprintf(
			"drained %s: %s -> %s (severed %d, shipped %d, adopted %d)",
			rep.Scene, rep.From, rep.To, rep.Severed, rep.Shipped, rep.Adopted)})
	}
}

// ControlCall sends one control request to a gateway's admin address
// and returns the reply.
func ControlCall(addr string, req ControlRequest, timeout time.Duration) (ControlReply, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return ControlReply{}, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(EncodeControlRequest(req)); err != nil {
		return ControlReply{}, err
	}
	return ReadControlReply(conn)
}
