package engine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/persist"
	"repro/internal/stats"
	"repro/internal/workload"
)

// checkpointExt names the per-scene checkpoint files in a data
// directory: scene-<name>.ckpt, with <name> guaranteed path-safe by
// ValidateSceneName.
const checkpointExt = ".ckpt"

// SessionJournalFile is the session journal's file name inside a data
// directory.
const SessionJournalFile = "sessions.journal"

// CheckpointPath returns the checkpoint file path for a scene name.
func CheckpointPath(dir, scene string) string {
	return filepath.Join(dir, "scene-"+scene+checkpointExt)
}

// checkpointMeta is the first record of a scene checkpoint: everything
// needed to rebuild the scene around the dataset payload in the second
// record.
type checkpointMeta struct {
	ordinal int // position in the registry order (0 = default scene)
	levels  int
	shards  int
	name    string
}

func encodeCheckpointMeta(m checkpointMeta) []byte {
	buf := make([]byte, 0, 14+len(m.name))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.ordinal))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.levels))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.shards))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.name)))
	buf = append(buf, m.name...)
	return buf
}

func decodeCheckpointMeta(p []byte) (checkpointMeta, error) {
	var m checkpointMeta
	if len(p) < 14 {
		return m, fmt.Errorf("engine: checkpoint meta too short")
	}
	m.ordinal = int(binary.LittleEndian.Uint32(p[0:4]))
	m.levels = int(binary.LittleEndian.Uint32(p[4:8]))
	m.shards = int(binary.LittleEndian.Uint32(p[8:12]))
	nameLen := int(binary.LittleEndian.Uint16(p[12:14]))
	if nameLen > MaxSceneName || 14+nameLen != len(p) {
		return m, fmt.Errorf("engine: checkpoint meta name overflow")
	}
	m.name = string(p[14 : 14+nameLen])
	return m, ValidateSceneName(m.name)
}

// SaveAll writes a durable checkpoint of every dataset-backed scene to
// dir (created if missing): one file per scene, each written atomically
// (temp + fsync + rename), holding a meta record and the dataset
// serialized with workload.Dataset.Save. Scenes registered without a
// Dataset (bare sources) have no serializable payload and are skipped.
// Checkpoint counters are recorded into st.
func (r *Registry) SaveAll(dir string, st *stats.Stats) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	type job struct {
		meta checkpointMeta
		d    *workload.Dataset
	}
	r.mu.RLock()
	jobs := make([]job, 0, len(r.order))
	for i, name := range r.order {
		sc := r.scenes[name]
		if sc.Dataset == nil {
			continue
		}
		jobs = append(jobs, job{
			meta: checkpointMeta{ordinal: i, levels: sc.Levels, shards: sc.Shards, name: name},
			d:    sc.Dataset,
		})
	}
	r.mu.RUnlock()
	for _, jb := range jobs {
		var payload bytes.Buffer
		if err := jb.d.Save(&payload); err != nil {
			return fmt.Errorf("engine: checkpoint scene %q: %w", jb.meta.name, err)
		}
		written, err := persist.WriteFileAtomic(CheckpointPath(dir, jb.meta.name), func(w *persist.Writer) error {
			if err := w.WriteRecord(encodeCheckpointMeta(jb.meta)); err != nil {
				return err
			}
			return w.WriteRecord(payload.Bytes())
		})
		if err != nil {
			return fmt.Errorf("engine: checkpoint scene %q: %w", jb.meta.name, err)
		}
		st.RecordCheckpoint(written)
	}
	return nil
}

// LoadAll rebuilds scenes from the checkpoints in dir, registering them
// in their original order (so the default scene stays the default).
// Damage never aborts the load: a torn or partly corrupt checkpoint
// contributes whatever records survive its CRCs, and a file left
// without both records is skipped — counted, never invented. Recovery
// tallies go to st; cfg supplies the per-scene knobs checkpoints do not
// carry (Stats). Returns the number of scenes loaded.
func (r *Registry) LoadAll(dir string, st *stats.Stats) (int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "scene-*"+checkpointExt))
	if err != nil {
		return 0, err
	}
	sort.Strings(matches)
	type loaded struct {
		meta checkpointMeta
		d    *workload.Dataset
	}
	var scenes []loaded
	for _, path := range matches {
		recs, rec, err := persist.ReadFile(path)
		st.RecordRecovery(rec.Records, rec.TailTruncated, rec.Quarantined)
		if err != nil {
			// Unreadable header: the file is not a checkpoint; skip it.
			st.RecordRecovery(0, 0, 1)
			continue
		}
		if len(recs) < 2 {
			// Both records did not survive; nothing trustworthy to load.
			continue
		}
		meta, err := decodeCheckpointMeta(recs[0])
		if err != nil {
			st.RecordRecovery(0, 0, 1)
			continue
		}
		d, err := workload.Load(bytes.NewReader(recs[1]), false)
		if err != nil {
			st.RecordRecovery(0, 0, 1)
			continue
		}
		scenes = append(scenes, loaded{meta: meta, d: d})
	}
	sort.SliceStable(scenes, func(i, j int) bool { return scenes[i].meta.ordinal < scenes[j].meta.ordinal })
	n := 0
	for _, sc := range scenes {
		if _, err := r.Build(SceneConfig{
			Name:    sc.meta.name,
			Dataset: sc.d,
			Levels:  sc.meta.levels,
			Shards:  sc.meta.shards,
			Stats:   st,
		}); err != nil {
			return n, fmt.Errorf("engine: restoring scene %q: %w", sc.meta.name, err)
		}
		n++
	}
	return n, nil
}

// Checkpointer periodically checkpoints a registry to a data directory.
type Checkpointer struct {
	stop   chan struct{}
	done   chan struct{}
	killed atomic.Bool
	once   sync.Once
}

// StartCheckpointer saves the registry to dir every interval until
// stopped, logging failures through logf (nil discards). Stop performs
// one final save; Kill (crash simulation) does not.
func (r *Registry) StartCheckpointer(dir string, interval time.Duration, st *stats.Stats, logf func(format string, args ...any)) *Checkpointer {
	if interval <= 0 {
		interval = time.Minute
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &Checkpointer{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(c.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if c.killed.Load() {
					return
				}
				if err := r.SaveAll(dir, st); err != nil {
					logf("checkpoint: %v", err)
				}
			case <-c.stop:
				if !c.killed.Load() {
					if err := r.SaveAll(dir, st); err != nil {
						logf("checkpoint (final): %v", err)
					}
				}
				return
			}
		}
	}()
	return c
}

// Stop ends the checkpoint loop after one final save. Idempotent.
func (c *Checkpointer) Stop() {
	if c == nil {
		return
	}
	c.once.Do(func() { close(c.stop) })
	<-c.done
}

// Kill ends the checkpoint loop without a final save, simulating the
// process dying. Idempotent.
func (c *Checkpointer) Kill() {
	if c == nil {
		return
	}
	c.killed.Store(true)
	c.once.Do(func() { close(c.stop) })
	<-c.done
}
