package mesh

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadOBJ checks the OBJ parser's totality: any input must produce
// either an error or a mesh that passes Validate (ReadOBJ promises
// validated output). Run with `go test -fuzz=FuzzReadOBJ ./internal/mesh`
// to explore; the seed corpus runs in the normal suite.
func FuzzReadOBJ(f *testing.F) {
	var octa bytes.Buffer
	WriteOBJ(&octa, Octahedron())
	f.Add(octa.String())
	f.Add("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n")
	f.Add("v 0 0 0\nv 1 0 0\nv 0 1 0\nv 1 1 0\nf 1 2 3 4\n")
	f.Add("f 1 2 3\n")
	f.Add("# comment only\n")
	f.Add("v 1e400 0 0\nv 1 0 0\nv 0 1 0\nf -1 -2 -3\n")
	f.Add("v a b c\n")

	f.Fuzz(func(t *testing.T, src string) {
		m, err := ReadOBJ(strings.NewReader(src))
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("ReadOBJ returned an invalid mesh: %v", verr)
		}
	})
}

// FuzzWavefrontRoundtrip: any mesh the parser accepts must survive a
// write/read cycle with identical topology.
func FuzzWavefrontRoundtrip(f *testing.F) {
	var box bytes.Buffer
	WriteOBJ(&box, Box())
	f.Add(box.String())

	f.Fuzz(func(t *testing.T, src string) {
		m, err := ReadOBJ(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteOBJ(&buf, m); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadOBJ(&buf)
		if err != nil {
			t.Fatalf("reread: %v", err)
		}
		if got.NumVerts() != m.NumVerts() || got.NumFaces() != m.NumFaces() {
			t.Fatalf("roundtrip %d/%d vs %d/%d",
				got.NumVerts(), got.NumFaces(), m.NumVerts(), m.NumFaces())
		}
	})
}
