package motion

import (
	"math"

	"repro/internal/geom"
)

// Estimator is the prediction interface the buffer manager consumes. The
// paper's proposal is the RLS/Kalman Predictor; LinearPredictor is the
// simple constant-velocity alternative of prior prefetching work ([14] in
// the paper: "assume linear movement of objects that use the speed and
// the direction of the client"), kept as an ablation baseline.
type Estimator interface {
	// Observe feeds the client's next position.
	Observe(pos geom.Vec2)
	// Ready reports whether enough history has accumulated to predict.
	Ready() bool
	// Predict estimates the position `steps` timestamps ahead.
	Predict(steps int) Prediction
	// Current returns the last observed position.
	Current() geom.Vec2
}

// Statically assert both predictors satisfy the interface.
var (
	_ Estimator = (*Predictor)(nil)
	_ Estimator = (*LinearPredictor)(nil)
)

// LinearPredictor extrapolates the most recent displacement with constant
// velocity. Its uncertainty estimate is the variance of recent
// displacements around their mean — honest about turn-heavy motion, but
// unlike the RLS predictor it can neither fit acceleration nor curves.
type LinearPredictor struct {
	last     geom.Vec2
	vel      geom.Vec2
	varX     float64
	varY     float64
	seen     int
	smoothed bool // velocity EMA initialized
}

// NewLinearPredictor creates the constant-velocity baseline.
func NewLinearPredictor() *LinearPredictor { return &LinearPredictor{} }

// Observe feeds the next position.
func (p *LinearPredictor) Observe(pos geom.Vec2) {
	if p.seen > 0 {
		d := pos.Sub(p.last)
		const alpha = 0.3
		if !p.smoothed {
			p.vel = d
			p.smoothed = true
		} else {
			ex, ey := d.X-p.vel.X, d.Y-p.vel.Y
			p.varX = (1-alpha)*p.varX + alpha*ex*ex
			p.varY = (1-alpha)*p.varY + alpha*ey*ey
			p.vel = p.vel.Scale(1 - alpha).Add(d.Scale(alpha))
		}
	}
	p.last = pos
	p.seen++
}

// Ready reports whether at least one displacement has been seen.
func (p *LinearPredictor) Ready() bool { return p.seen >= 2 }

// Predict extrapolates `steps` ahead at the smoothed velocity, with
// variance growing linearly in the horizon (independent per-step noise).
func (p *LinearPredictor) Predict(steps int) Prediction {
	if !p.Ready() {
		return Prediction{Mean: p.last, VarX: math.Inf(1), VarY: math.Inf(1)}
	}
	return Prediction{
		Mean: p.last.Add(p.vel.Scale(float64(steps))),
		VarX: p.varX * float64(steps),
		VarY: p.varY * float64(steps),
	}
}

// Current returns the last observed position.
func (p *LinearPredictor) Current() geom.Vec2 { return p.last }

// VisitProbabilitiesE and FrameVisitProbabilitiesE are Estimator-generic
// versions of the probability fields (the concrete-typed functions remain
// for compatibility and the common case).

// VisitProbabilitiesE computes grid visit probabilities for any
// estimator.
func VisitProbabilitiesE(p Estimator, g *geom.Grid, horizon int) map[geom.Cell]float64 {
	out := make(map[geom.Cell]float64)
	if !p.Ready() || horizon < 1 {
		return out
	}
	cellArea := g.CellWidth() * g.CellHeight()
	for i := 1; i <= horizon; i++ {
		pr := p.Predict(i)
		sx := math.Max(math.Sqrt(pr.VarX), g.CellWidth()/4)
		sy := math.Max(math.Sqrt(pr.VarY), g.CellHeight()/4)
		if math.IsInf(sx, 1) || math.IsInf(sy, 1) {
			continue
		}
		reach := geom.R2(pr.Mean.X-3*sx, pr.Mean.Y-3*sy, pr.Mean.X+3*sx, pr.Mean.Y+3*sy)
		for _, c := range g.CellsIn(reach) {
			out[c] += gauss2(g.CellCenter(c), pr.Mean, sx, sy) * cellArea
		}
	}
	normalize(out)
	return out
}

// FrameVisitProbabilitiesE computes frame-extended visit probabilities
// for any estimator.
func FrameVisitProbabilitiesE(p Estimator, g *geom.Grid, horizon int, frameSide float64) map[geom.Cell]float64 {
	out := make(map[geom.Cell]float64)
	if !p.Ready() || horizon < 1 {
		return out
	}
	for i := 1; i <= horizon; i++ {
		pr := p.Predict(i)
		sx := math.Max(math.Sqrt(pr.VarX), g.CellWidth()/4)
		sy := math.Max(math.Sqrt(pr.VarY), g.CellHeight()/4)
		if math.IsInf(sx, 1) || math.IsInf(sy, 1) {
			continue
		}
		frame := geom.RectAround(pr.Mean, frameSide)
		reach := frame.Expand(3 * math.Max(sx, sy))
		step := make(map[geom.Cell]float64)
		for _, c := range g.CellsIn(reach) {
			ctr := g.CellCenter(c)
			dx := axisDist(ctr.X, frame.Min.X, frame.Max.X) / sx
			dy := axisDist(ctr.Y, frame.Min.Y, frame.Max.Y) / sy
			step[c] = math.Exp(-0.5 * (dx*dx + dy*dy))
		}
		normalize(step)
		for c, v := range step {
			out[c] += v
		}
	}
	normalize(out)
	return out
}
