package rtree

import "fmt"

// Validate checks the structural invariants of the tree and returns the
// first violation found: fanout bounds (root excepted), uniform leaf
// depth, parent MBRs covering children, and stored size matching the leaf
// count. It is used by tests and is cheap enough to call after bulk loads.
func (t *Tree) Validate() error {
	dims := t.cfg.Dims
	leaves := 0
	var walk func(n *node, depth int, isRoot bool) error
	walk = func(n *node, depth int, isRoot bool) error {
		if !isRoot && len(n.entries) < t.cfg.MinEntries {
			return fmt.Errorf("rtree: node at depth %d underfull: %d < %d",
				depth, len(n.entries), t.cfg.MinEntries)
		}
		if len(n.entries) > t.cfg.MaxEntries {
			return fmt.Errorf("rtree: node at depth %d overfull: %d > %d",
				depth, len(n.entries), t.cfg.MaxEntries)
		}
		if n.leaf {
			if depth != t.height {
				return fmt.Errorf("rtree: leaf at depth %d, height %d", depth, t.height)
			}
			leaves += len(n.entries)
			return nil
		}
		if isRoot && len(n.entries) < 2 {
			return fmt.Errorf("rtree: internal root with %d entries", len(n.entries))
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.child == nil {
				return fmt.Errorf("rtree: internal entry %d has nil child at depth %d", i, depth)
			}
			mbr := e.child.mbr(dims)
			if !e.rect.contains(&mbr, dims) {
				return fmt.Errorf("rtree: entry rect %v does not cover child mbr %v", e.rect, mbr)
			}
			if err := walk(e.child, depth+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, true); err != nil {
		return err
	}
	if leaves != t.size {
		return fmt.Errorf("rtree: size %d but %d leaf entries", t.size, leaves)
	}
	return nil
}
