package wavelet

import (
	"math"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// Reconstructor rebuilds an object's mesh from whatever subset of wavelet
// coefficients the client has received so far. It models the client-side
// rendering state: applying more coefficients monotonically sharpens the
// mesh toward M^J. Reconstruction replays the deterministic subdivision of
// the base topology, so vertex ids assigned during reconstruction match
// the ids recorded at decomposition time.
type Reconstructor struct {
	baseTopology *mesh.Mesh // positions ignored; topology drives subdivision
	center       geom.Vec3  // placeholder for vertices with no data yet
	levels       int
	have         map[int32]geom.Vec3 // vertex id → displacement (position for base)
	haveBase     map[int32]bool
}

// NewReconstructor creates the client-side state for one object. The
// client is assumed to know the object's subdivision schema (base topology
// and level count) and its placement center — both are tiny compared to
// the coefficient payload — but no geometry.
func NewReconstructor(baseTopology *mesh.Mesh, center geom.Vec3, levels int) *Reconstructor {
	return &Reconstructor{
		baseTopology: baseTopology.Clone(),
		center:       center,
		levels:       levels,
		have:         make(map[int32]geom.Vec3),
		haveBase:     make(map[int32]bool),
	}
}

// Apply records one received coefficient. Applying the same coefficient
// twice is harmless (idempotent), mirroring the server-side duplicate
// filtering being an optimization rather than a correctness requirement.
func (r *Reconstructor) Apply(c Coefficient) {
	r.have[c.Vertex] = c.Delta
	if c.Level == BaseLevel {
		r.haveBase[c.Vertex] = true
	}
}

// Count returns the number of distinct coefficients applied so far.
func (r *Reconstructor) Count() int { return len(r.have) }

// Mesh reconstructs the object at the full topology M^J using every
// coefficient applied so far. Vertices whose coefficients have not arrived
// sit at the midpoint of their parents (zero displacement); base vertices
// without data collapse to the object center.
func (r *Reconstructor) Mesh() *mesh.Mesh {
	m := r.baseTopology.Clone()
	for i := range m.Verts {
		if r.haveBase[int32(i)] {
			m.Verts[i] = r.have[int32(i)]
		} else {
			m.Verts[i] = r.center
		}
	}
	for j := 0; j < r.levels; j++ {
		fine, splits := mesh.Subdivide(m)
		for _, sp := range splits {
			if d, ok := r.have[sp.Vertex]; ok {
				fine.Verts[sp.Vertex] = fine.Verts[sp.Vertex].Add(d)
			}
		}
		m = fine
	}
	return m
}

// Error returns the root-mean-square vertex distance between the
// reconstruction and the reference mesh (typically Decomposition.Final).
// It panics if the vertex counts differ, which would indicate mismatched
// subdivision schemas.
func (r *Reconstructor) Error(ref *mesh.Mesh) float64 {
	m := r.Mesh()
	if m.NumVerts() != ref.NumVerts() {
		panic("wavelet: reconstruction topology mismatch")
	}
	var sum float64
	for i := range m.Verts {
		d := m.Verts[i].Dist(ref.Verts[i])
		sum += d * d
	}
	return math.Sqrt(sum / float64(m.NumVerts()))
}

// ApplyAll applies a batch of coefficients.
func (r *Reconstructor) ApplyAll(cs []Coefficient) {
	for i := range cs {
		r.Apply(cs[i])
	}
}
