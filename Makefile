# Development targets. `make ci` is the full gate a change must pass:
# build, vet, the tier-1 test suite, and the race-detector run that
# guards the concurrent serving path (see README "Testing").

GO ?= go

.PHONY: build test race vet bench soak ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race gate: the full suite under the race detector, including the
# multi-client soak (internal/proto), the concurrent-search property
# tests (internal/index), and the parallel-execution tests
# (internal/retrieval).
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Just the concurrency-focused tests, verbosely.
soak:
	$(GO) test -race -v -run 'TestMultiClientSoak|TestConcurrent|TestExecuteParallel|TestBulkLoadedTreeSurvivesChurn' ./internal/proto/ ./internal/index/ ./internal/retrieval/ ./internal/rtree/

ci: build vet test race
