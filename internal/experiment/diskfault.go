package experiment

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/faultdisk"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/motion"
	"repro/internal/persist"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/workload"
)

// DiskFaultSpec configures the storage-fault acceptance soak: a
// deterministic city is served twice — once from the in-memory Store
// (the oracle), once from a paged segment layered over a faultdisk
// reader injecting transient I/O errors and torn reads on top of one
// permanently corrupted page — and the faulty server must degrade by
// withholding exactly the unreadable coefficients, never by crashing,
// then converge byte-identically once the page heals. The zero value
// gets quick-scale defaults.
type DiskFaultSpec struct {
	Seed    int64
	Blocks  int // city blocks per side (default 3)
	Lots    int // lots per block side (default 2)
	Levels  int // subdivision depth (default 2)
	Steps   int // tour length per client (default 24)
	Clients int // concurrent seeded tours (default 2)

	// PageSize is the segment page size in bytes (default 4096).
	PageSize int
	// BudgetDivisor sets the page-cache budget to payload/BudgetDivisor
	// (default 4 — small enough to force paging under faults).
	BudgetDivisor int64
	// RetryMax bounds the pager's re-reads per transient fault
	// (default 2).
	RetryMax int

	// DataDir holds the segment file ("" = fresh temp dir, removed
	// afterwards).
	DataDir string
}

func (s DiskFaultSpec) fill() DiskFaultSpec {
	if s.Blocks == 0 {
		s.Blocks = 3
	}
	if s.Lots == 0 {
		s.Lots = 2
	}
	if s.Levels == 0 {
		s.Levels = 2
	}
	if s.Steps == 0 {
		s.Steps = 24
	}
	if s.Clients == 0 {
		s.Clients = 2
	}
	if s.PageSize == 0 {
		s.PageSize = 4096
	}
	if s.BudgetDivisor == 0 {
		s.BudgetDivisor = 4
	}
	if s.RetryMax == 0 {
		s.RetryMax = 2
	}
	return s
}

// teleport resets a wire client's planner to a wholesale window: a
// frame over a rect disjoint from everything (outside the scene space)
// makes the next Frame plan the full [w, 1] band over its whole rect
// (Algorithm 1's empty-overlap fallback). The teleport frame itself
// must deliver nothing.
func teleport(c *proto.Client, space geom.Rect2) error {
	away := geom.R2(space.Max.X+1000, space.Max.Y+1000, space.Max.X+1010, space.Max.Y+1010)
	n, err := c.Frame(away, 0)
	if err != nil {
		return err
	}
	if n != 0 {
		return fmt.Errorf("teleport frame outside the space delivered %d coefficients", n)
	}
	return nil
}

// RunDiskFault runs the storage-fault tolerance soak and prints a
// summary. The experiment fails (as an error) unless:
//
//   - Phase A: with transient faults armed and one page permanently
//     corrupt, every frame on the faulty server still succeeds (the
//     server never exits, nothing panics), the faulty side's cumulative
//     deliveries never exceed the oracle's, and residency stays within
//     the page-cache budget;
//   - a post-tour scrub quarantines exactly the corrupt page and
//     nothing else (healthy pages can suffer transient faults but
//     never quarantine);
//   - Phase B, pre-heal: a wholesale window delivers everything except
//     exactly the corrupt page's coefficients — per object, the faulty
//     count equals the oracle count minus the coefficients resident on
//     the corrupt page, and objects untouched by that page reconstruct
//     byte-identically;
//   - Phase B, post-heal: after clearing the corruption and re-scrubbing
//     (which lifts the quarantine), the same sessions receive exactly
//     the withheld coefficients — every object converges byte-identical
//     to the oracle, and a further wholesale window delivers zero on
//     both sides;
//   - the pager counters reconcile exactly (pins = hits + faults,
//     resident = faults − evictions, zero pinned at rest, exactly one
//     quarantine event, retries and fault errors observed) and the
//     serving stats counted the withheld coefficients.
func RunDiskFault(spec DiskFaultSpec, w io.Writer) error {
	spec = spec.fill()

	dir := spec.DataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "diskfault-experiment-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	wspec := workload.CitySpec{
		BlocksX: spec.Blocks, BlocksY: spec.Blocks,
		LotsPerBlock: spec.Lots, Levels: spec.Levels, Seed: spec.Seed,
	}
	mem := workload.GenerateCity(wspec)
	segPath := filepath.Join(dir, "city.seg")
	if err := workload.BuildCitySegment(segPath, wspec, spec.PageSize); err != nil {
		return err
	}

	// Open the segment through the fault injector. It starts quiesced so
	// the open (header/footer reads) and the index build (one clean scan
	// of every page) see a healthy disk; faults arm once serving starts.
	f, err := os.Open(segPath)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	fd := faultdisk.New(f, faultdisk.Config{
		Seed: spec.Seed + 7,
		// Transient errors roughly every handful of page reads, torn
		// reads rarer. Bit flips stay off here: a flip landing on the
		// final retry of a healthy page would quarantine it, and this
		// soak pins down quarantine of exactly the corrupt page (the
		// faultdisk unit tests cover flips).
		ErrAfterMin: int64(spec.PageSize), ErrAfterMax: 16 * int64(spec.PageSize),
		TornAfterMin: 8 * int64(spec.PageSize), TornAfterMax: 64 * int64(spec.PageSize),
	})
	fd.Quiesce()

	payload := mem.NumCoeffs() * index.CoeffRecordSize
	budget := payload / spec.BudgetDivisor
	seg, err := persist.NewSegment(fd, fi.Size())
	if err != nil {
		return err
	}
	ps, err := index.NewPagedSegment(seg, index.PagedConfig{
		CacheBytes:   budget,
		RetryMax:     spec.RetryMax,
		RetryBackoff: 50 * time.Microsecond,
	})
	if err != nil {
		return err
	}
	defer ps.Close()

	stMem, stFaulty := stats.New(), stats.New()
	fd.SetStats(stFaulty)
	memSrv, memLis, err := cityServer(proto.DefaultSceneName, mem, spec.Levels, stMem)
	if err != nil {
		return err
	}
	defer memSrv.Close()
	faultySrv, faultyLis, err := cityServer(proto.DefaultSceneName, ps, ps.Levels(), stFaulty)
	if err != nil {
		return err
	}
	defer faultySrv.Close()

	// Damage the disk: one page of permanent corruption (a bad sector
	// under the CRC directory) plus the armed transient weather.
	corruptPage := seg.NumPages() / 2
	fd.SetCorrupt(seg.PageOffset(corruptPage), int64(seg.PageSize()))
	fd.Arm()

	// The corrupt page's coefficients, grouped by object — the exact
	// set the faulty side must withhold and later converge on.
	perPage := int64(seg.RecordsPerPage())
	corruptLo := int64(corruptPage) * perPage
	corruptHi := corruptLo + int64(seg.RecordsInPage(corruptPage))
	corruptByObject := map[int32]int{}
	for id := corruptLo; id < corruptHi; id++ {
		corruptByObject[index.MustCoeff(mem, id).Object]++
	}

	space := mem.Bounds().XY()
	tours := motion.Tours(motion.Tram, motion.TourSpec{
		Space: space, Steps: spec.Steps, Speed: 0.25,
	}, spec.Clients, spec.Seed+1)
	side := space.Width() * 0.15

	type pair struct {
		oracle *proto.Client
		faulty *proto.Client
	}
	clients := make([]pair, spec.Clients)
	for i := range clients {
		if clients[i].oracle, err = proto.Dial(memLis.Addr().String(), nil); err != nil {
			return err
		}
		defer clients[i].oracle.Close()
		if clients[i].faulty, err = proto.Dial(faultyLis.Addr().String(), nil); err != nil {
			return err
		}
		defer clients[i].faulty.Close()
	}

	// Phase A: lockstep tours through the weather. Every frame must
	// succeed on both sides; the faulty side may deliver less (withheld
	// coefficients), never more, and must respect the cache budget.
	start := time.Now()
	frames := 0
	oracleCoeffs, faultyCoeffs := int64(0), int64(0)
	for step := 0; step < spec.Steps; step++ {
		for ci := range clients {
			rect := geom.RectAround(tours[ci].Pos[step], side)
			speed := tours[ci].SpeedAt(step)
			no, err := clients[ci].oracle.Frame(rect, speed)
			if err != nil {
				return fmt.Errorf("oracle client %d frame %d: %w", ci, step, err)
			}
			nf, err := clients[ci].faulty.Frame(rect, speed)
			if err != nil {
				return fmt.Errorf("faulty client %d frame %d: %w", ci, step, err)
			}
			frames++
			oracleCoeffs += int64(no)
			faultyCoeffs += int64(nf)
			if faultyCoeffs > oracleCoeffs {
				return fmt.Errorf("client %d frame %d: faulty side delivered %d cumulative coefficients, oracle only %d",
					ci, step, faultyCoeffs, oracleCoeffs)
			}
			if st := ps.PagerStats(); st.ResidentBytes > budget {
				return fmt.Errorf("client %d frame %d: resident payload %d B exceeds budget %d B",
					ci, step, st.ResidentBytes, budget)
			}
		}
	}
	tourTime := time.Since(start)
	stormCounters := fd.Counters()
	if stormCounters.Errs == 0 {
		return fmt.Errorf("experiment: the transient schedule injected no errors over %d frames; densify it", frames)
	}

	// The weather clears; the bad sector remains. A scrub must
	// quarantine exactly the corrupt page.
	fd.Quiesce()
	bad, err := ps.VerifyPages()
	if err != nil {
		return fmt.Errorf("experiment: post-storm scrub: %w", err)
	}
	if len(bad) != 1 || bad[0] != corruptPage {
		return fmt.Errorf("experiment: scrub quarantined pages %v, want exactly [%d]", bad, corruptPage)
	}
	if st := ps.PagerStats(); st.Quarantined != 1 {
		return fmt.Errorf("experiment: %d quarantine events, want exactly 1 (healthy pages must never quarantine)", st.Quarantined)
	}

	// Phase B, pre-heal: a wholesale window on every session. The
	// oracle completes its picture; the faulty side must be short by
	// exactly the corrupt page's coefficients.
	preHealWithheld := int64(0)
	for ci := range clients {
		if err := teleport(clients[ci].oracle, space); err != nil {
			return fmt.Errorf("oracle client %d: %w", ci, err)
		}
		if err := teleport(clients[ci].faulty, space); err != nil {
			return fmt.Errorf("faulty client %d: %w", ci, err)
		}
		no, err := clients[ci].oracle.Frame(space, 0)
		if err != nil {
			return fmt.Errorf("oracle client %d wholesale frame: %w", ci, err)
		}
		nf, err := clients[ci].faulty.Frame(space, 0)
		if err != nil {
			return fmt.Errorf("faulty client %d wholesale frame: %w", ci, err)
		}
		preHealWithheld += int64(no - nf)

		oracle, faulty := clients[ci].oracle, clients[ci].faulty
		for obj := int32(0); obj < int32(mem.NumObjects()); obj++ {
			memCount := len(mem.Objects[obj].Coeffs)
			if oracle.CoeffCount(obj) != memCount {
				return fmt.Errorf("client %d object %d: oracle wholesale window delivered %d of %d coefficients",
					ci, obj, oracle.CoeffCount(obj), memCount)
			}
			want := memCount - corruptByObject[obj]
			if faulty.CoeffCount(obj) != want {
				return fmt.Errorf("client %d object %d: faulty side has %d coefficients pre-heal, want %d (%d withheld on page %d)",
					ci, obj, faulty.CoeffCount(obj), want, corruptByObject[obj], corruptPage)
			}
			if corruptByObject[obj] == 0 {
				om, _ := oracle.Mesh(obj)
				fm, ok := faulty.Mesh(obj)
				if !ok || om.NumVerts() != fm.NumVerts() {
					return fmt.Errorf("client %d object %d: healthy-page object diverged pre-heal", ci, obj)
				}
				for v := range om.Verts {
					if om.Verts[v] != fm.Verts[v] {
						return fmt.Errorf("client %d object %d vertex %d: healthy-page mesh not byte-identical under faults",
							ci, obj, v)
					}
				}
			}
		}
	}
	if preHealWithheld == 0 {
		return fmt.Errorf("experiment: wholesale window withheld nothing despite a quarantined page")
	}
	if got := stFaulty.Snapshot().CoeffsWithheld; got == 0 {
		return fmt.Errorf("experiment: serving stats counted no withheld coefficients")
	}

	// Heal the disk and re-scrub: the quarantine lifts and the withheld
	// coefficients flow to the same sessions — byte-identical
	// convergence, then steady-state silence.
	fd.ClearCorrupt()
	bad, err = ps.VerifyPages()
	if err != nil || len(bad) != 0 {
		return fmt.Errorf("experiment: post-heal scrub = %v, %v, want clean", bad, err)
	}
	healedDelivered := int64(0)
	for ci := range clients {
		if err := teleport(clients[ci].faulty, space); err != nil {
			return fmt.Errorf("faulty client %d post-heal: %w", ci, err)
		}
		nf, err := clients[ci].faulty.Frame(space, 0)
		if err != nil {
			return fmt.Errorf("faulty client %d convergence frame: %w", ci, err)
		}
		healedDelivered += int64(nf)

		oracle, faulty := clients[ci].oracle, clients[ci].faulty
		for obj := int32(0); obj < int32(mem.NumObjects()); obj++ {
			if faulty.CoeffCount(obj) != oracle.CoeffCount(obj) {
				return fmt.Errorf("client %d object %d: %d coefficients after heal, oracle %d",
					ci, obj, faulty.CoeffCount(obj), oracle.CoeffCount(obj))
			}
			om, _ := oracle.Mesh(obj)
			fm, ok := faulty.Mesh(obj)
			if !ok || om.NumVerts() != fm.NumVerts() {
				return fmt.Errorf("client %d object %d: reconstruction missing after heal", ci, obj)
			}
			for v := range om.Verts {
				if om.Verts[v] != fm.Verts[v] {
					return fmt.Errorf("client %d object %d vertex %d: converged mesh not byte-identical",
						ci, obj, v)
				}
			}
		}

		// Steady state: one more wholesale window delivers zero on both
		// sides — nothing was double-delivered, nothing is still owed.
		if err := teleport(clients[ci].oracle, space); err != nil {
			return fmt.Errorf("oracle client %d steady state: %w", ci, err)
		}
		if err := teleport(clients[ci].faulty, space); err != nil {
			return fmt.Errorf("faulty client %d steady state: %w", ci, err)
		}
		no, err := clients[ci].oracle.Frame(space, 0)
		if err != nil {
			return err
		}
		nf, err = clients[ci].faulty.Frame(space, 0)
		if err != nil {
			return err
		}
		if no != 0 || nf != 0 {
			return fmt.Errorf("client %d steady-state window delivered oracle %d / faulty %d, want 0/0", ci, no, nf)
		}
	}
	if healedDelivered != preHealWithheld {
		return fmt.Errorf("experiment: healed sessions received %d coefficients, want exactly the %d withheld",
			healedDelivered, preHealWithheld)
	}

	// Close the faulty clients before reconciling, so no frame is in
	// flight while we require zero pinned pages.
	for ci := range clients {
		clients[ci].faulty.Close()
	}
	st := ps.PagerStats()
	counters := fd.Counters()

	fmt.Fprintf(w, "diskfault: %s · payload %d B in %d pages of %d B · budget %d B (1/%d) · corrupt page %d (%d coefficients)\n",
		wspec, payload, seg.NumPages(), spec.PageSize, budget, spec.BudgetDivisor, corruptPage, corruptHi-corruptLo)
	fmt.Fprintf(w, "  storm: %d clients × %d frames in %v · injected %d errors · %d torn · %d corrupt reads\n",
		spec.Clients, spec.Steps, tourTime.Round(time.Millisecond), counters.Errs, counters.Torn, counters.CorruptReads)
	fmt.Fprintf(w, "  paging: %d faults · %d hits · %d retries · %d read errors · %d quarantine event(s) · %d evictions\n",
		st.Faults, st.Hits, st.Retries, st.FaultErrors, st.Quarantined, st.Evictions)
	fmt.Fprintf(w, "  degradation: %d coefficients withheld pre-heal · %d delivered on convergence · oracle %d vs faulty %d over the tours\n",
		preHealWithheld, healedDelivered, oracleCoeffs, faultyCoeffs)

	// Exact reconciliation: the fault plumbing must not bend the
	// pager's accounting identities.
	if st.Pins != st.Hits+st.Faults {
		return fmt.Errorf("experiment: pager pins %d != hits %d + faults %d", st.Pins, st.Hits, st.Faults)
	}
	if st.PagesResident != st.Faults-st.Evictions {
		return fmt.Errorf("experiment: resident pages %d != faults %d - evictions %d",
			st.PagesResident, st.Faults, st.Evictions)
	}
	if st.PagesPinned != 0 {
		return fmt.Errorf("experiment: %d pages still pinned after the sessions closed", st.PagesPinned)
	}
	if st.Quarantined != 1 {
		return fmt.Errorf("experiment: %d quarantine events at rest, want exactly 1", st.Quarantined)
	}
	if st.Retries == 0 || st.FaultErrors == 0 {
		return fmt.Errorf("experiment: retries %d / fault errors %d — the fault path was not exercised",
			st.Retries, st.FaultErrors)
	}
	fmt.Fprintf(w, "  reconciliation OK: pins = hits + faults · resident = faults - evictions · 0 pinned · 1 quarantine\n")
	fmt.Fprintf(w, "  convergence OK: healthy pages byte-identical under faults · withheld set re-delivered exactly once after heal\n")
	return nil
}
