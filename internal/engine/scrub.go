package engine

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// PageVerifier is the scrub hook of an out-of-core store: re-read and
// CRC-verify every page, quarantining corrupt ones and lifting the
// quarantine of pages that now read clean. index.PagedStore implements
// it (VerifyPages delegates to persist.Pager.Scrub).
type PageVerifier interface {
	VerifyPages() ([]int, error)
}

// StartScrubber runs store.VerifyPages on a ticker — the background
// scrub cadence that keeps quarantine state converging with the actual
// disk instead of only at boot (-verify-pages) or on demand. Each pass
// is counted via stats.RecordScrub; passes that find corrupt pages (or
// fail outright) are logged. The returned stop function is idempotent,
// halts the ticker, and waits for an in-flight pass to finish — call it
// on shutdown before closing the store. interval <= 0 or a nil store
// disables the scrubber (stop is still safe to call).
func StartScrubber(store PageVerifier, interval time.Duration, st *stats.Stats, logf func(format string, args ...any)) (stop func()) {
	if store == nil || interval <= 0 {
		return func() {}
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				bad, err := store.VerifyPages()
				st.RecordScrub()
				switch {
				case err != nil:
					logf("scrub: pass failed: %v", err)
				case len(bad) > 0:
					logf("scrub: %d page(s) quarantined: %v", len(bad), bad)
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}
