package proto

import (
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/abr"
	"repro/internal/geom"
	"repro/internal/retrieval"
	"repro/internal/stats"
	"repro/internal/wavelet"
)

// ResilientConfig tunes a ResilientClient. The zero value of every field
// except Dial/Addrs gets a sensible default.
type ResilientConfig struct {
	// Dial opens a fresh connection to the server. Called for the
	// initial connection and after every transport failure; wrap it
	// with faultnet to model a degraded wireless link. Exactly one of
	// Dial and Addrs is required; when both are set, Dial wins.
	Dial func() (net.Conn, error)
	// Addrs is the gateway-aware alternative to Dial: a list of
	// equivalent serving addresses (several gateways, or a scene's
	// replica set) tried in rotation. A dial failure rotates to the next
	// address, so a permanently dead entry costs one failed attempt per
	// revolution instead of wedging the client; a successful dial pins
	// the rotation to that address until it fails. Resume semantics are
	// unchanged — the token travels with the client, not the address.
	Addrs []string
	// DialTimeout bounds one Addrs dial attempt (default: FrameTimeout).
	// Ignored when Dial is set.
	DialTimeout time.Duration
	// MapSpeed is the speed→resolution mapping of §IV (nil = Identity).
	// Degraded mode composes on top of it.
	MapSpeed retrieval.MapSpeedToResolution
	// Scene binds the session to a named engine scene ("" accepts the
	// server's default). Reconnects re-select it before resuming.
	Scene string
	// FrameTimeout bounds one frame attempt (write + round-trip + read).
	// Default 10s.
	FrameTimeout time.Duration
	// MaxAttempts bounds dial/frame attempts per Frame call. Default 8.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between attempts. Defaults 50ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed makes the backoff jitter deterministic (tests, experiments).
	Seed int64
	// ABR enables the adaptive-bitrate loop (non-nil): every frame ships
	// as a budgeted request sized by the bandwidth/RTT estimator, and
	// the server truncates along the viewport-utility plan instead of
	// the client coarsening wholesale. The two-state degraded floor
	// (DegradeAfter/DegradeStep) stays armed underneath as the
	// last-resort fallback — it only engages after the timeouts that
	// mean even minimum-budget frames are not completing. Zero-value
	// abr.Config fields get their defaults.
	ABR *abr.Config
	// DegradeAfter is the number of consecutive timeouts before the
	// client coarsens its requested resolution (raises the effective
	// wmin) — the paper's speed/resolution tradeoff reused as a
	// bandwidth fallback. 0 disables degraded mode.
	DegradeAfter int
	// DegradeStep is how much each degradation raises the wmin floor
	// (default 0.2, floor capped at 1). Successful frames halve the
	// floor back toward full resolution.
	DegradeStep float64
	// Stats receives retry/timeout/resume/degraded counters (nil = none).
	Stats *stats.Stats

	// sleep is a test seam; nil uses time.Sleep.
	sleep func(time.Duration)
}

// ResilientClient wraps Client with the failure policy a wireless
// deployment needs: per-frame deadlines, capped exponential backoff with
// jitter, automatic re-dial with session resumption, and a degraded mode
// that trades resolution for survivable bandwidth after repeated
// timeouts. It is not safe for concurrent use (one client = one mobile
// user), matching Client.
type ResilientClient struct {
	cfg  ResilientConfig
	c    *Client
	rng  *rand.Rand
	dead bool // connection must be re-established before the next frame
	abr  *abr.Controller // nil unless cfg.ABR enables the budgeted loop

	// addrIdx points at the Addrs entry the rotation is currently pinned
	// to; dial failures advance it.
	addrIdx int

	consecTimeouts int
	floor          float64 // degraded-mode wmin floor (0 = full resolution)

	// Lifetime totals, also mirrored into cfg.Stats.
	Retries  int64
	Timeouts int64
	Resumes  int64 // successful session resumptions
	Replans  int64 // reconnects that fell back to a full re-plan
}

// DialResilient connects (retrying per the config) and performs the
// handshake.
func DialResilient(cfg ResilientConfig) (*ResilientClient, error) {
	if cfg.Dial == nil && len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("proto: ResilientConfig needs Dial or Addrs")
	}
	if cfg.FrameTimeout <= 0 {
		cfg.FrameTimeout = 10 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = cfg.FrameTimeout
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.DegradeStep <= 0 {
		cfg.DegradeStep = 0.2
	}
	if cfg.sleep == nil {
		cfg.sleep = time.Sleep
	}
	rc := &ResilientClient{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.ABR != nil {
		rc.abr = abr.NewController(*cfg.ABR)
	}
	var lastErr error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.backoff(attempt)
		}
		if lastErr = rc.connect(); lastErr == nil {
			return rc, nil
		}
	}
	return nil, fmt.Errorf("proto: connect failed after %d attempts: %w", cfg.MaxAttempts, lastErr)
}

// mapSpeed composes the configured speed→resolution mapping with the
// degraded-mode floor.
func (rc *ResilientClient) mapSpeed(speed float64) float64 {
	base := rc.cfg.MapSpeed
	if base == nil {
		base = retrieval.Identity
	}
	w := base(speed)
	if w < rc.floor {
		w = rc.floor
	}
	if w > 1 {
		w = 1
	}
	return w
}

// dial opens one connection: through cfg.Dial when set, otherwise to
// the address the rotation is pinned to.
func (rc *ResilientClient) dial() (net.Conn, error) {
	if rc.cfg.Dial != nil {
		return rc.cfg.Dial()
	}
	addr := rc.cfg.Addrs[rc.addrIdx%len(rc.cfg.Addrs)]
	conn, err := net.DialTimeout("tcp", addr, rc.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("proto: dial %s: %w", addr, err)
	}
	return conn, nil
}

// Addr returns the rotation's current address ("" when a custom Dial is
// configured).
func (rc *ResilientClient) Addr() string {
	if len(rc.cfg.Addrs) == 0 {
		return ""
	}
	return rc.cfg.Addrs[rc.addrIdx%len(rc.cfg.Addrs)]
}

// connect establishes (or re-establishes) the connection. After the
// first success it reconnects the existing client, preserving planner
// and reconstruction state and attempting a session resume. In Addrs
// mode any failure — dial or handshake — advances the rotation, so a
// permanently dead or broken replica costs one attempt per revolution.
func (rc *ResilientClient) connect() (err error) {
	if len(rc.cfg.Addrs) > 0 {
		defer func() {
			if err != nil {
				rc.addrIdx++
			}
		}()
	}
	conn, err := rc.dial()
	if err != nil {
		return err
	}
	conn.SetDeadline(time.Now().Add(rc.cfg.FrameTimeout))
	defer func() {
		if err == nil {
			rc.c.conn.SetDeadline(time.Time{})
		}
	}()
	if rc.c == nil {
		var c *Client
		if c, err = NewSceneClient(conn, rc.cfg.Scene, rc.mapSpeed); err != nil {
			return err
		}
		rc.c = c
		rc.dead = false
		return nil
	}
	var resumed bool
	if resumed, err = rc.c.Reconnect(conn); err != nil {
		return err
	}
	if resumed {
		rc.Resumes++
	} else {
		rc.Replans++
	}
	rc.cfg.Stats.RecordResume(resumed)
	rc.dead = false
	return nil
}

// Frame issues one continuous-query frame, retrying through transport
// failures until it succeeds or the attempt budget is spent. Each
// attempt runs under the frame deadline; failed attempts back off
// exponentially (with jitter), re-dial, and resume the session. The
// frame that finally succeeds delivers exactly what a fault-free frame
// would have (see the Client retry-safety contract).
func (rc *ResilientClient) Frame(q geom.Rect2, speed float64) (int, error) {
	var lastErr error
	for attempt := 0; attempt < rc.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.backoff(attempt)
		}
		if rc.dead {
			if err := rc.connect(); err != nil {
				lastErr = err
				rc.noteFailure(err)
				continue
			}
		}
		rc.c.conn.SetDeadline(time.Now().Add(rc.cfg.FrameTimeout))
		var n int
		var err error
		if rc.abr != nil {
			// ABR path: budget the frame from the estimator, publish the
			// loop's state, and feed the transfer accounting back. The
			// round-trip time measured here spans request write to
			// response applied — exactly the linear link model the
			// estimator fits.
			budget := rc.abr.Budget()
			rc.cfg.Stats.SetABR(rc.abr.Bandwidth(), rc.abr.RTT(), budget)
			start := time.Now()
			n, _, err = rc.c.FrameBudget(q, speed, budget, rc.abr.Rings())
			if err == nil {
				rc.abr.Observe(int64(n)*wavelet.WireBytes, time.Since(start))
			}
		} else {
			n, err = rc.c.Frame(q, speed)
		}
		if err == nil {
			rc.c.conn.SetDeadline(time.Time{})
			rc.noteSuccess()
			return n, nil
		}
		lastErr = err
		rc.noteFailure(err)
	}
	return 0, fmt.Errorf("proto: frame failed after %d attempts: %w", rc.cfg.MaxAttempts, lastErr)
}

// backoff sleeps for min(BackoffMax, BackoffBase·2^(attempt−1)) plus up
// to 50% deterministic jitter.
func (rc *ResilientClient) backoff(attempt int) {
	d := rc.cfg.BackoffBase << (attempt - 1)
	if d > rc.cfg.BackoffMax || d <= 0 {
		d = rc.cfg.BackoffMax
	}
	d += time.Duration(rc.rng.Int63n(int64(d)/2 + 1))
	rc.cfg.Stats.RecordRetry(d)
	rc.Retries++
	rc.cfg.sleep(d)
}

// noteFailure abandons the connection and updates timeout/degradation
// accounting.
func (rc *ResilientClient) noteFailure(err error) {
	if rc.c != nil && !rc.dead {
		rc.c.conn.Close()
	}
	rc.dead = true
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		rc.Timeouts++
		rc.cfg.Stats.RecordTimeout()
		if rc.abr != nil {
			// No transfer sample arrived; apply the multiplicative
			// decrease so the next frame's budget halves.
			rc.abr.Penalize()
		}
		rc.consecTimeouts++
		if rc.cfg.DegradeAfter > 0 && rc.consecTimeouts >= rc.cfg.DegradeAfter {
			rc.consecTimeouts = 0
			if rc.floor < 1 {
				rc.floor += rc.cfg.DegradeStep
				if rc.floor > 1 {
					rc.floor = 1
				}
				rc.cfg.Stats.RecordDegraded()
			}
		}
	}
}

// noteSuccess decays degraded mode back toward full resolution.
func (rc *ResilientClient) noteSuccess() {
	rc.consecTimeouts = 0
	rc.floor /= 2
	if rc.floor < 1e-3 {
		rc.floor = 0
	}
}

// DegradeFloor returns the current degraded-mode wmin floor (0 when
// running at full resolution).
func (rc *ResilientClient) DegradeFloor() float64 { return rc.floor }

// ABR returns the adaptive-bitrate controller (nil when the config did
// not enable it) — the observability hook harnesses read bandwidth, RTT
// and budget from.
func (rc *ResilientClient) ABR() *abr.Controller { return rc.abr }

// Client exposes the underlying protocol client (hello, meshes, totals).
// Do not issue frames on it directly while using the resilient wrapper.
func (rc *ResilientClient) Client() *Client { return rc.c }

// Hello returns the dataset schema announced by the server.
func (rc *ResilientClient) Hello() Hello { return rc.c.hello }

// Close sends a goodbye and closes the connection.
func (rc *ResilientClient) Close() error {
	if rc.c == nil {
		return nil
	}
	return rc.c.Close()
}
