package abr

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/retrieval"
)

// MaxRings bounds the viewport decomposition. rings concentric regions
// (1 rect for the innermost, ≤4 difference rects for each outer ring) ×
// bands layers must stay under proto.MaxSubQueries (64); 4 rings × 3
// bands is at most (1+4+4+4)×3 = 39 sub-queries.
const MaxRings = 4

// bands is the number of resolution layers the planner splits the
// [w, 1] coefficient range into: a coarse layer carrying the large
// structural coefficients, a middle layer, and the fine tail.
const bands = 3

// bandCuts places the layer boundaries inside [w, 1] as fractions of
// the range: band 0 = [w+0.55·(1−w), 1], band 1 = [w+0.25·(1−w), ·),
// band 2 = [w, ·). Coefficient values are normalized magnitudes, so the
// top slice of the range holds the few large coefficients that carry
// the object's shape — the cheap bytes every ring should get first.
var bandCuts = [bands + 1]float64{1, 0.55, 0.25, 0}

// ringWeights and bandWeights shape the priority order (descending
// product). Band weights decay faster than ring weights, so every
// ring's coarse band outranks any ring's finer bands: under a tight
// budget the far viewport keeps its coarse structure instead of being
// dropped while the near viewport hoards detail.
var (
	ringWeights = [MaxRings]float64{1, 0.45, 0.2, 0.09}
	bandWeights = [bands]float64{1, 0.15, 0.04}
)

// PlanViewport decomposes one query frame into budget-ready sub-queries
// ordered by screen-space utility: rings concentric regions around the
// viewer (ring 0 nearest) crossed with resolution bands over [w, 1],
// sorted by descending ringWeight×bandWeight. The union of the regions
// is exactly q and the bands cover [w, 1], so with an unlimited budget
// the plan retrieves precisely what a single full-band window query
// would (the delivered-set filter removes the band-boundary overlaps).
// Under a server-side byte budget, truncation along this order is what
// makes degradation graceful: coarse-everywhere survives before
// fine-anywhere.
//
// The plan is deterministic: same (q, viewer, w, rings) in, identical
// slice out — the property server-side truncation determinism builds
// on. The plan does not use frame-to-frame incrementality; repeated
// coverage is filtered by the session's delivered set, which remains
// exact under truncation (withheld coefficients are never marked
// delivered).
func PlanViewport(q geom.Rect2, viewer geom.Vec2, w float64, rings int) []retrieval.SubQuery {
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	if rings <= 0 {
		rings = 1
	}
	if rings > MaxRings {
		rings = MaxRings
	}

	// Concentric ring regions: boxes around the viewer scaled to
	// i/rings of the frame, intersected with the frame; ring i is the
	// part of box i+1 outside box i. The outermost box is q itself, so
	// the regions partition q exactly even when the viewer sits off
	// center (or outside q entirely).
	side := q.Width()
	if h := q.Height(); h > side {
		side = h
	}
	regions := make([][]geom.Rect2, 0, rings)
	var inner geom.Rect2
	haveInner := false
	for i := 0; i < rings; i++ {
		var box geom.Rect2
		if i == rings-1 {
			box = q
		} else {
			box = geom.RectAround(viewer, side*float64(i+1)/float64(rings)).Intersect(q)
			if box.Empty() {
				// Viewer outside the frame: the ring contributes nothing of
				// its own; fold it into the next ring's difference.
				regions = append(regions, nil)
				continue
			}
		}
		if haveInner {
			regions = append(regions, box.Difference(inner))
		} else {
			regions = append(regions, []geom.Rect2{box})
		}
		inner, haveInner = box, true
	}

	// Bands over [w, 1], outermost boundary first. Zero-width layers
	// (w ≈ 1) collapse into the coarse band.
	type layer struct{ lo, hi float64 }
	layers := make([]layer, 0, bands)
	for j := 0; j < bands; j++ {
		hi := w + (1-w)*bandCuts[j]
		lo := w + (1-w)*bandCuts[j+1]
		if j > 0 && hi <= lo {
			continue
		}
		layers = append(layers, layer{lo: lo, hi: hi})
	}

	// Cross rings × layers and sort by descending utility with a
	// deterministic tie-break.
	type cell struct {
		ring, band int
		score      float64
	}
	cells := make([]cell, 0, rings*len(layers))
	for i := 0; i < rings; i++ {
		if len(regions[i]) == 0 {
			continue
		}
		for j := range layers {
			cells = append(cells, cell{ring: i, band: j, score: ringWeights[i] * bandWeights[j]})
		}
	}
	sort.SliceStable(cells, func(a, b int) bool {
		if cells[a].score != cells[b].score {
			return cells[a].score > cells[b].score
		}
		if cells[a].ring != cells[b].ring {
			return cells[a].ring < cells[b].ring
		}
		return cells[a].band < cells[b].band
	})

	subs := make([]retrieval.SubQuery, 0, len(cells)*2)
	for _, c := range cells {
		l := layers[c.band]
		for _, r := range regions[c.ring] {
			subs = append(subs, retrieval.SubQuery{Region: r, WMin: l.lo, WMax: l.hi})
		}
	}
	return subs
}

// Contribution is the screen-space utility weight of content at
// distance d from the viewer in a frame of the given side length: 1 at
// the viewer, falling off with the square of the normalized distance.
// The planner's ring weights approximate it; the ABR benchmark uses it
// directly to score delivered coefficients.
func Contribution(d, side float64) float64 {
	if side <= 0 {
		return 1
	}
	n := d / side
	return 1 / (1 + 4*n*n)
}
