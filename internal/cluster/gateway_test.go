package cluster

import (
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/motion"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/workload"
)

// sceneSpec pairs a scene name with the workload seed it is generated
// from, so backends and oracles build byte-identical datasets
// independently.
type sceneSpec struct {
	name string
	seed int64
}

func sceneConfig(t *testing.T, sp sceneSpec, st *stats.Stats) engine.SceneConfig {
	t.Helper()
	d := workload.Generate(workload.Spec{NumObjects: 24, Levels: 3, Seed: sp.seed})
	return engine.SceneConfig{Name: sp.name, Dataset: d, Levels: 3, Shards: 2, Stats: st}
}

// startGateway serves a gateway over the topology in a goroutine and
// returns its address and a shutdown func.
func startGateway(t *testing.T, top *Topology, st *stats.Stats, probeEvery time.Duration) (*Gateway, string) {
	t.Helper()
	gw, err := NewGateway(GatewayConfig{
		Topology:   top,
		Stats:      st,
		Logf:       t.Logf,
		ProbeEvery: probeEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := gw.Serve(lis); err != nil {
			t.Errorf("gateway serve: %v", err)
		}
	}()
	t.Cleanup(func() { gw.Close(); <-done })
	return gw, lis.Addr().String()
}

// tourFrames materializes a deterministic motion tour for a scene.
type frame struct {
	q     geom.Rect2
	speed float64
}

func tourFrames(d *workload.Dataset, seed int64, steps int) []frame {
	tour := motion.NewTour(motion.Tram, motion.TourSpec{
		Space: d.Store.Bounds().XY(), Steps: steps, Speed: 0.25,
	}, rand.New(rand.NewSource(seed)))
	side := d.QuerySide(0.10)
	out := make([]frame, steps)
	for i, pos := range tour.Pos {
		out[i] = frame{q: geom.RectAround(pos, side), speed: tour.SpeedAt(i)}
	}
	return out
}

// assertMeshesMatch compares a client's reconstructions against an
// oracle client byte for byte.
func assertMeshesMatch(t *testing.T, label string, oracle, got *proto.Client) {
	t.Helper()
	if len(oracle.Objects()) == 0 {
		t.Fatalf("%s: oracle retrieved no objects; comparison vacuous", label)
	}
	for _, id := range oracle.Objects() {
		om, _ := oracle.Mesh(id)
		gm, ok := got.Mesh(id)
		if !ok || got.CoeffCount(id) != oracle.CoeffCount(id) || om.NumVerts() != gm.NumVerts() {
			t.Fatalf("%s: object %d diverged (have %v, coeffs %d vs %d)",
				label, id, ok, got.CoeffCount(id), oracle.CoeffCount(id))
		}
		for i := range om.Verts {
			if om.Verts[i] != gm.Verts[i] {
				t.Fatalf("%s: object %d vertex %d differs", label, id, i)
			}
		}
	}
}

// TestGatewayUnknownScene pins the gateway's behavior for a client
// selecting a scene no backend serves: a sanitized wire error, not a
// hang and not a raw internal string.
func TestGatewayUnknownScene(t *testing.T) {
	st := stats.New()
	b, err := StartBackend(BackendConfig{
		Scenes: []engine.SceneConfig{sceneConfig(t, sceneSpec{"city", 7}, st)},
		Stats:  st,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	top := &Topology{Order: []string{"city"}, Replicas: map[string][]string{"city": {b.Addr()}}}
	_, gwAddr := startGateway(t, top, stats.New(), 0)

	done := make(chan error, 1)
	go func() {
		_, err := proto.DialScene(gwAddr, "atlantis", nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("unknown scene accepted")
		}
		if !strings.Contains(err.Error(), "unknown scene: atlantis") {
			t.Fatalf("error %q does not name the unknown scene", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("unknown-scene select hung instead of erroring")
	}

	// A valid select through the same gateway still works.
	c, err := proto.DialScene(gwAddr, "city", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Scene() != "city" {
		t.Fatalf("scene = %q", c.Scene())
	}
	c.Close()
}

// TestClusterRaceSoak is the concurrency gate for the cluster layer:
// 16 clients across two scenes on two backends, all proxied through
// one gateway, with one live drain relocating the busier scene
// mid-tour. Every client must finish byte-identical to its scene's
// oracle with zero re-plans (no session lost), and the per-backend
// stats must reconcile exactly against the gateway's routing counters.
// Run under -race (make race / make cluster).
func TestClusterRaceSoak(t *testing.T) {
	const (
		clientsPerScene = 8
		steps           = 36
		drainAt         = steps / 2
	)
	dir := t.TempDir()
	east, west := sceneSpec{"east", 21}, sceneSpec{"west", 22}

	st1, st2 := stats.New(), stats.New()
	b1, err := StartBackend(BackendConfig{
		Scenes:  []engine.SceneConfig{sceneConfig(t, east, st1)},
		DataDir: filepath.Join(dir, "b1"),
		Stats:   st1,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := StartBackend(BackendConfig{
		Scenes:  []engine.SceneConfig{sceneConfig(t, west, st2)},
		DataDir: filepath.Join(dir, "b2"),
		Stats:   st2,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := b1.Addr(), b2.Addr()

	gwStats := stats.New()
	top := &Topology{
		Order:    []string{"east", "west"},
		Replicas: map[string][]string{"east": {a1}, "west": {a2}},
	}
	gw, gwAddr := startGateway(t, top, gwStats, 25*time.Millisecond)
	ctl := NewController(gw, []*Backend{b1, b2}, gwStats)

	// Oracle: an off-topology backend serving both scenes from
	// identically generated datasets; one fault-free client per scene.
	oracleB, err := StartBackend(BackendConfig{
		Scenes: []engine.SceneConfig{
			sceneConfig(t, east, stats.New()),
			sceneConfig(t, west, stats.New()),
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer oracleB.Stop()

	oracles := map[string]*proto.Client{}
	frames := map[string][]frame{}
	for _, sp := range []sceneSpec{east, west} {
		d := workload.Generate(workload.Spec{NumObjects: 24, Levels: 3, Seed: sp.seed})
		frames[sp.name] = tourFrames(d, 100+sp.seed, steps)
		oc, err := proto.DialScene(oracleB.Addr(), sp.name, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range frames[sp.name] {
			if _, err := oc.Frame(f.q, f.speed); err != nil {
				t.Fatalf("oracle %s frame %d: %v", sp.name, i, err)
			}
		}
		defer oc.Close()
		oracles[sp.name] = oc
	}

	// 16 clients march their tours; all pause at the halfway barrier
	// with live sessions, the controller drains east from b1 to b2, and
	// everyone finishes.
	type result struct {
		scene            string
		rc               *proto.ResilientClient
		resumes, replans int64
		err              error
	}
	results := make([]result, 2*clientsPerScene)
	var atBarrier sync.WaitGroup
	atBarrier.Add(len(results))
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for ci := range results {
		scene := "east"
		if ci >= clientsPerScene {
			scene = "west"
		}
		results[ci].scene = scene
		wg.Add(1)
		go func(ci int, scene string) {
			defer wg.Done()
			rc, err := proto.DialResilient(proto.ResilientConfig{
				Addrs:        []string{gwAddr},
				Scene:        scene,
				FrameTimeout: 10 * time.Second,
				MaxAttempts:  20,
				BackoffBase:  2 * time.Millisecond,
				BackoffMax:   50 * time.Millisecond,
				Seed:         int64(ci),
			})
			if err != nil {
				results[ci].err = fmt.Errorf("dial: %w", err)
				atBarrier.Done()
				return
			}
			for i, f := range frames[scene] {
				if i == drainAt {
					atBarrier.Done()
					<-gate
				}
				if _, err := rc.Frame(f.q, f.speed); err != nil {
					results[ci].err = fmt.Errorf("frame %d: %w", i, err)
					return
				}
			}
			results[ci].rc = rc
			results[ci].resumes = rc.Resumes
			results[ci].replans = rc.Replans
		}(ci, scene)
	}

	atBarrier.Wait()
	rep, err := ctl.Drain("east", a2)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(gate)
	wg.Wait()

	if rep.Severed != clientsPerScene || rep.Shipped != clientsPerScene || rep.Adopted != clientsPerScene {
		t.Fatalf("drain report %+v, want %d severed/shipped/adopted", rep, clientsPerScene)
	}
	if got := gw.Routes()["east"]; len(got) != 1 || got[0] != a2 {
		t.Fatalf("post-drain east route = %v, want [%s]", got, a2)
	}

	// Every session survived: byte-identical meshes, no lost sessions
	// (zero re-plans), and east clients resumed exactly once.
	for ci := range results {
		r := &results[ci]
		if r.err != nil {
			t.Fatalf("client %d (%s): %v", ci, r.scene, r.err)
		}
		assertMeshesMatch(t, fmt.Sprintf("client %d (%s)", ci, r.scene), oracles[r.scene], r.rc.Client())
		if r.replans != 0 {
			t.Errorf("client %d (%s): %d re-plans — a session was lost", ci, r.scene, r.replans)
		}
		wantResumes := int64(0)
		if r.scene == "east" {
			wantResumes = 1
		}
		if r.resumes != wantResumes {
			t.Errorf("client %d (%s): resumes = %d, want %d", ci, r.scene, r.resumes, wantResumes)
		}
		r.rc.Close()
	}

	// Exact per-backend reconciliation: stop the gateway (ends the
	// prober), then each backend's accepted sessions must equal the
	// routes plus probes the gateway recorded against it.
	gw.Close()
	b1.Stop()
	b2.Stop()
	gs := gwStats.Snapshot()
	s1, s2 := st1.Snapshot(), st2.Snapshot()
	for _, bk := range []struct {
		addr string
		s    stats.Snapshot
	}{{a1, s1}, {a2, s2}} {
		g := gs.Backends[bk.addr]
		if g.ProbeFails != 0 {
			t.Errorf("backend %s: %d failed probes during a clean soak", bk.addr, g.ProbeFails)
		}
		if bk.s.SessionsOpened != g.Routes+g.Probes {
			t.Errorf("backend %s: opened %d sessions, gateway accounts for %d routes + %d probes",
				bk.addr, bk.s.SessionsOpened, g.Routes, g.Probes)
		}
	}
	if gs.Drains != 1 {
		t.Errorf("drains = %d, want 1", gs.Drains)
	}
	// The drained scene's resumes were all served from shipped
	// (restored-flagged) sessions on the target backend.
	if s2.ResumesRestored != clientsPerScene {
		t.Errorf("restored resumes on target = %d, want %d", s2.ResumesRestored, clientsPerScene)
	}
	if s1.ResumesRestored != 0 {
		t.Errorf("restored resumes on source = %d, want 0", s1.ResumesRestored)
	}
}
