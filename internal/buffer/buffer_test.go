package buffer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/motion"
)

func TestOptimalSplitSymmetric(t *testing.T) {
	// pl = pr must give a/2 (DESIGN.md invariant).
	for _, a := range []int{2, 5, 10, 100} {
		if n := OptimalSplit(0.5, 0.5, a); math.Abs(n-float64(a)/2) > 1e-9 {
			t.Errorf("a=%d: n_opt = %v want %v", a, n, float64(a)/2)
		}
	}
}

func TestOptimalSplitSkew(t *testing.T) {
	// Heavily left-biased motion allocates nearly everything left.
	n := OptimalSplit(0.95, 0.05, 20)
	if n < 15 {
		t.Errorf("n_opt = %v for 95/5 split", n)
	}
	// And symmetric behavior when mirrored: n(pl,pr) + n(pr,pl) ≈ a
	// does not hold exactly for eq (2), but ordering must flip.
	n2 := OptimalSplit(0.05, 0.95, 20)
	if n2 >= n {
		t.Errorf("mirrored split %v not below %v", n2, n)
	}
}

func TestOptimalSplitDegenerate(t *testing.T) {
	if n := OptimalSplit(0, 0, 10); n != 5 {
		t.Errorf("zero probs: %v", n)
	}
	if n := OptimalSplit(0, 1, 10); n != 1 {
		t.Errorf("left-zero: %v", n)
	}
	if n := OptimalSplit(1, 0, 10); n != 10 {
		t.Errorf("right-zero: %v", n)
	}
	// Extreme ratio exercising the overflow branch.
	if n := OptimalSplit(1, 1e-300, 1000); n < 900 || n > 1000 {
		t.Errorf("extreme ratio: %v", n)
	}
}

func TestOptimalSplitMaximizesResidence(t *testing.T) {
	// eq (2) should (approximately) maximize the corridor residence time
	// computed independently by the first-passage solver.
	for _, pl := range []float64{0.3, 0.5, 0.6, 0.8} {
		total := 20
		left, right := SplitBlocks(pl, 1-pl, total)
		got := ResidenceTime(pl, left, right)
		best := 0.0
		for l := 0; l <= total; l++ {
			if rt := ResidenceTime(pl, l, total-l); rt > best {
				best = rt
			}
		}
		if got < 0.9*best {
			t.Errorf("pl=%v: residence %v below 90%% of best %v (split %d/%d)",
				pl, got, best, left, right)
		}
	}
}

func TestResidenceTimeBasics(t *testing.T) {
	// Zero corridor: absorbed after the first step.
	if rt := ResidenceTime(0.5, 0, 0); rt != 1 {
		t.Errorf("rt(0,0) = %v", rt)
	}
	// Larger corridor, longer residence.
	if ResidenceTime(0.5, 5, 5) <= ResidenceTime(0.5, 2, 2) {
		t.Error("residence not increasing in corridor size")
	}
	// A biased walker leaves a symmetric corridor sooner.
	if ResidenceTime(0.9, 5, 5) >= ResidenceTime(0.5, 5, 5) {
		t.Error("biased walker should leave sooner")
	}
}

func TestAllocateSumsAndNonNegative(t *testing.T) {
	f := func(p1, p2, p3, p4 float64, totalRaw uint8) bool {
		abs := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0.1
			}
			return math.Abs(math.Mod(x, 10))
		}
		probs := []float64{abs(p1), abs(p2), abs(p3), abs(p4)}
		total := int(totalRaw)
		shares := Allocate(probs, total)
		sum := 0
		for _, s := range shares {
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAllocateFavorsLikelyDirection(t *testing.T) {
	shares := Allocate([]float64{0.7, 0.1, 0.1, 0.1}, 40)
	for i := 1; i < 4; i++ {
		if shares[0] <= shares[i] {
			t.Errorf("dominant direction got %d vs direction %d's %d", shares[0], i, shares[i])
		}
	}
}

func TestAllocateSingleDirection(t *testing.T) {
	if s := Allocate([]float64{1}, 17); s[0] != 17 {
		t.Errorf("single direction share = %v", s)
	}
}

func TestAllocateUniformRoughlyEqual(t *testing.T) {
	shares := Allocate([]float64{0.25, 0.25, 0.25, 0.25}, 40)
	for _, s := range shares {
		if s < 8 || s > 12 {
			t.Errorf("uniform shares = %v", shares)
		}
	}
}

// fixedFetcher returns a constant block size regardless of cell or
// resolution.
type fixedFetcher int64

func (f fixedFetcher) BlockBytes(geom.Cell, float64) int64 { return int64(f) }

// resFetcher scales block size with resolution: finer resolution (lower
// wmin) costs more bytes, like real multiresolution blocks.
type resFetcher struct{ base int64 }

func (f resFetcher) BlockBytes(_ geom.Cell, wmin float64) int64 {
	return int64(float64(f.base) * (0.2 + 0.8*(1-wmin)))
}

func testGrid() *geom.Grid { return geom.NewGrid(geom.R2(0, 0, 1000, 1000), 25, 25) }

func TestManagerPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Grid: nil, Capacity: 100},
		{Grid: testGrid(), Capacity: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			NewManager(cfg, fixedFetcher(10))
		}()
	}
}

func TestManagerFirstFrameMisses(t *testing.T) {
	m := NewManager(Config{Grid: testGrid(), Capacity: 64 << 10}, fixedFetcher(1000))
	frame := geom.RectAround(geom.V2(500, 500), 100)
	res := m.Step(geom.V2(500, 500), frame, 0.5)
	if res.Demand <= 0 || !res.Missed() {
		t.Fatal("first frame should miss")
	}
	met := m.Metrics()
	if met.Hits != 0 || met.Misses == 0 {
		t.Fatalf("metrics %+v", met)
	}
}

func TestManagerStationaryClientAllHits(t *testing.T) {
	m := NewManager(Config{Grid: testGrid(), Capacity: 256 << 10}, fixedFetcher(1000))
	frame := geom.RectAround(geom.V2(500, 500), 100)
	m.Step(geom.V2(500, 500), frame, 0.5)
	for i := 0; i < 10; i++ {
		if res := m.Step(geom.V2(500, 500), frame, 0.5); res.Demand != 0 {
			t.Fatalf("stationary step %d fetched %d bytes", i, res.Demand)
		}
	}
	met := m.Metrics()
	if met.Hits == 0 {
		t.Fatal("no hits recorded")
	}
}

func TestManagerRefetchesFinerResolution(t *testing.T) {
	m := NewManager(Config{Grid: testGrid(), Capacity: 256 << 10}, resFetcher{1000})
	frame := geom.RectAround(geom.V2(500, 500), 100)
	m.Step(geom.V2(500, 500), frame, 0.9) // coarse
	// Slowing down demands finer data: blocks held at 0.9 don't satisfy 0.1.
	if res := m.Step(geom.V2(500, 500), frame, 0.1); res.Demand == 0 {
		t.Fatal("finer-resolution demand served from coarse blocks")
	}
	// Finer blocks do satisfy coarser queries.
	if res := m.Step(geom.V2(500, 500), frame, 0.9); res.Demand != 0 {
		t.Fatal("coarse demand not served from fine blocks")
	}
}

func TestManagerCapacityRespected(t *testing.T) {
	capacity := int64(32 << 10)
	m := NewManager(Config{Grid: testGrid(), Capacity: capacity}, fixedFetcher(1500))
	rng := rand.New(rand.NewSource(1))
	pos := geom.V2(200, 200)
	for i := 0; i < 100; i++ {
		pos = pos.Add(geom.V2(rng.Float64()*20, rng.Float64()*20))
		if pos.X > 900 || pos.Y > 900 {
			pos = geom.V2(200, 200)
		}
		m.Step(pos, geom.RectAround(pos, 80), 0.5)
		if _, bytes := m.Resident(); bytes > capacity+4*1500 {
			// The frame's own blocks may exceed capacity, but not by more
			// than a handful of blocks.
			t.Fatalf("step %d: resident %d ≫ capacity %d", i, bytes, capacity)
		}
	}
}

// tourHitRate runs a manager over a synthetic tour and returns the final
// metrics.
func tourHitRate(t *testing.T, policy Policy, kind motion.TourKind, capacity int64, seed int64) Metrics {
	t.Helper()
	g := testGrid()
	tour := motion.NewTour(kind, motion.TourSpec{
		Space: g.Space, Steps: 300, Speed: 0.4,
	}, rand.New(rand.NewSource(seed)))
	m := NewManager(Config{Grid: g, Capacity: capacity, Policy: policy}, fixedFetcher(2000))
	for _, pos := range tour.Pos {
		m.Step(pos, geom.RectAround(pos, 100), 0.5)
	}
	return m.Metrics()
}

func TestMotionAwareBeatsNaiveHitRate(t *testing.T) {
	// Figure 10(a)'s headline: the motion-aware buffer yields a higher hit
	// rate than uniform prefetching, for both tour kinds.
	for _, kind := range []motion.TourKind{motion.Tram, motion.Pedestrian} {
		var ma, nv float64
		for seed := int64(0); seed < 3; seed++ {
			ma += tourHitRate(t, MotionAware, kind, 64<<10, seed).HitRate()
			nv += tourHitRate(t, NaiveUniform, kind, 64<<10, seed).HitRate()
		}
		if ma <= nv {
			t.Errorf("%v: motion-aware hit rate %v not above naive %v", kind, ma/3, nv/3)
		}
	}
}

func TestMotionAwareBeatsNaiveUtilization(t *testing.T) {
	// Figure 10(b): motion-aware prefetching wastes less bandwidth.
	var ma, nv float64
	for seed := int64(0); seed < 3; seed++ {
		ma += tourHitRate(t, MotionAware, motion.Tram, 64<<10, seed).Utilization()
		nv += tourHitRate(t, NaiveUniform, motion.Tram, 64<<10, seed).Utilization()
	}
	if ma <= nv {
		t.Errorf("motion-aware utilization %v not above naive %v", ma/3, nv/3)
	}
}

func TestHitRateGrowsWithBuffer(t *testing.T) {
	// Figure 10(a): larger buffers hold more data and hit more often.
	small := tourHitRate(t, MotionAware, motion.Tram, 16<<10, 7).HitRate()
	large := tourHitRate(t, MotionAware, motion.Tram, 128<<10, 7).HitRate()
	if large <= small {
		t.Errorf("hit rate did not grow with buffer: %v → %v", small, large)
	}
}

func TestMetricsAccounting(t *testing.T) {
	m := NewManager(Config{Grid: testGrid(), Capacity: 64 << 10}, fixedFetcher(1000))
	for i := 0; i < 50; i++ {
		pos := geom.V2(100+float64(i)*10, 500)
		m.Step(pos, geom.RectAround(pos, 80), 0.5)
	}
	met := m.Metrics()
	if met.UsedPrefetch > met.PrefetchBytes {
		t.Errorf("used prefetch %d exceeds prefetched %d", met.UsedPrefetch, met.PrefetchBytes)
	}
	if met.TotalBytes() != met.DemandBytes+met.PrefetchBytes {
		t.Error("TotalBytes mismatch")
	}
	if u := met.Utilization(); u < 0 || u > 1 {
		t.Errorf("utilization %v out of range", u)
	}
	if hr := met.HitRate(); hr < 0 || hr > 1 {
		t.Errorf("hit rate %v out of range", hr)
	}
	if met.Connections == 0 {
		t.Error("no connections counted")
	}
}

func TestEmptyMetrics(t *testing.T) {
	var m Metrics
	if m.HitRate() != 0 || m.Utilization() != 0 || m.TotalBytes() != 0 {
		t.Error("zero metrics should report zeros")
	}
}

func TestLRUBasics(t *testing.T) {
	l := NewLRU(100)
	if l.Get(1) {
		t.Fatal("empty cache hit")
	}
	l.Put(1, 40)
	l.Put(2, 40)
	if !l.Get(1) || !l.Get(2) {
		t.Fatal("lost entries")
	}
	if l.Len() != 2 || l.Bytes() != 80 {
		t.Fatalf("len=%d bytes=%d", l.Len(), l.Bytes())
	}
	// Inserting a third 40-byte item evicts the LRU (which is 1 after the
	// Get order above refreshed 2 last... Get(2) was last, so 1 is LRU).
	l.Put(3, 40)
	if l.Contains(1) {
		t.Error("LRU entry not evicted")
	}
	if !l.Contains(2) || !l.Contains(3) {
		t.Error("wrong eviction victim")
	}
}

func TestLRURecencyOrder(t *testing.T) {
	l := NewLRU(100)
	l.Put(1, 40)
	l.Put(2, 40)
	l.Get(1) // refresh 1; 2 becomes LRU
	l.Put(3, 40)
	if l.Contains(2) {
		t.Error("refreshed entry evicted instead of stale one")
	}
	if !l.Contains(1) {
		t.Error("recently used entry evicted")
	}
}

func TestLRUOversizeItem(t *testing.T) {
	l := NewLRU(100)
	l.Put(1, 200)
	if l.Len() != 0 {
		t.Error("oversize item cached")
	}
}

func TestLRUResize(t *testing.T) {
	l := NewLRU(100)
	l.Put(1, 30)
	l.Put(1, 60) // grow in place
	if l.Bytes() != 60 || l.Len() != 1 {
		t.Fatalf("bytes=%d len=%d", l.Bytes(), l.Len())
	}
}

func TestLRUHitRate(t *testing.T) {
	l := NewLRU(1000)
	l.Put(1, 10)
	l.Get(1)
	l.Get(2)
	if hr := l.HitRate(); math.Abs(hr-0.5) > 1e-12 {
		t.Errorf("hit rate = %v", hr)
	}
}

func TestLRUPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLRU(0)
}
