// Package proto defines the binary wire protocol between a mobile client
// and the retrieval server for the networked demonstration: a hello
// handshake carrying the dataset schema and a session token, window-query
// requests (the sub-query sets Algorithm 1 produces), streamed
// coefficient records, and a session-resume exchange that lets a client
// survive the link failures a wireless deployment treats as routine.
// Framing is little-endian with explicit lengths, written through
// bufio so each message costs one flush — mirroring the
// one-connection-per-query cost model of the paper.
//
// Version 2 appends a CRC32-C trailer to every frame that carries
// retrieval state (Request, Response, Resume, ResumeOK, ResumeFail), so
// corruption on a degraded link is detected as ErrChecksum instead of
// being misparsed into the index search path. Hello, Error, and Bye stay
// trailer-free: they carry no state whose corruption could desync a
// session, and keeping Hello plain lets a version mismatch be reported
// before any v2 machinery engages.
package proto

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/retrieval"
	"repro/internal/wavelet"
)

// Message type tags.
const (
	TagHello      = byte(1)
	TagRequest    = byte(2)
	TagResponse   = byte(3)
	TagError      = byte(4)
	TagBye        = byte(5)
	TagResume     = byte(6)
	TagResumeOK   = byte(7)
	TagResumeFail = byte(8)
	TagScene      = byte(9)
	// Budgeted frames (version 4): a request carrying a per-frame byte
	// budget and a response carrying truncation metadata. Deliberately
	// separate tags rather than new fields on TagRequest/TagResponse, so
	// a client that never sets a budget emits frames byte-identical to
	// version 3 and every pre-ABR harness keeps its oracle equality.
	TagBudgetRequest  = byte(10)
	TagBudgetResponse = byte(11)
)

// Version is bumped on incompatible wire changes. Version 2 added CRC
// frame trailers, the session token in Hello, the sequence number in
// Response, and the resume exchange. Version 3 added the scene name to
// Hello and the scene-select exchange (TagScene) for multi-scene
// engines. Version 4 added the budgeted request/response frames
// (TagBudgetRequest/TagBudgetResponse) for ABR streaming; the version-3
// frames are unchanged byte-for-byte.
const Version = 4

// MaxSubQueries bounds one request; Algorithm 1 produces at most 5
// sub-queries (overlap band + 4 difference rectangles), so anything
// larger indicates a corrupted stream.
const MaxSubQueries = 64

// MaxCoeffs bounds one response (sanity limit against corrupted length
// prefixes).
const MaxCoeffs = 1 << 24

// MaxWireErrorLen caps error strings sent to clients: long enough for
// any protocol diagnostic, short enough that an error reply can never
// balloon into a payload (and always below the reader's own limit, so a
// conforming writer can never emit an error frame the peer rejects).
const MaxWireErrorLen = 256

// ErrChecksum reports a frame whose CRC trailer did not match its body:
// the bytes were delivered but damaged in transit. The connection is
// desynchronized and must be abandoned (and, with a resumable session,
// re-established).
var ErrChecksum = errors.New("proto: frame checksum mismatch")

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms that matter.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SanitizeWireError prepares an internal error for the wire: the string
// is capped at MaxWireErrorLen bytes and every non-printable or
// non-ASCII byte is replaced, so a corrupted request can never reflect
// binary garbage (or multi-line log-forgery text) back over the
// protocol or into peers' logs. Every writer of error frames shares it.
func SanitizeWireError(err error) string {
	msg := err.Error()
	if len(msg) > MaxWireErrorLen {
		msg = msg[:MaxWireErrorLen]
	}
	return strings.Map(func(r rune) rune {
		if r < 0x20 || r > 0x7e {
			return '?'
		}
		return r
	}, msg)
}

// Hello announces the dataset schema: the client needs the subdivision
// depth, base-mesh vertex count, and object count to set up
// reconstructors, and the space bounds to navigate. Token identifies the
// session for a later resume (zero from non-resuming peers, e.g. tests
// that frame messages into a buffer). Scene names the engine scene the
// parameters describe; a server re-sends a hello (same token) after a
// successful scene-select exchange.
type Hello struct {
	Version   int32
	Objects   int32
	Levels    int32
	BaseVerts int32 // vertices of the shared base mesh (octahedron: 6)
	Space     geom.Rect2
	Token     uint64
	Scene     string
}

// Request carries the sub-queries of one query frame together with the
// client's declared speed (for server-side logging/derating).
//
// MaxBytes is the per-frame byte budget of a budgeted request (0 =
// unlimited): the server answers with at most MaxBytes of coefficient
// payload, truncated deterministically along the sub-query order. It
// travels only in TagBudgetRequest frames — WriteRequest ignores it,
// keeping the version-3 layout untouched.
type Request struct {
	Speed    float64
	Subs     []retrieval.SubQuery
	MaxBytes int64
}

// Resume asks the server to adopt the delivered-set of a recently closed
// session. AppliedSeq is the sequence number of the last response the
// client fully applied; a server holding the session one frame ahead
// (response sent but lost) rolls that frame's deliveries back so they
// are re-sent rather than lost in the gap.
type Resume struct {
	Token      uint64
	AppliedSeq int64
}

// ResumeOK confirms adoption: Seq echoes the (post-rollback) sequence
// number, which always equals the client's AppliedSeq; Delivered is the
// size of the adopted delivered-set, a cheap cross-check.
type ResumeOK struct {
	Seq       int64
	Delivered int64
}

// Coeff is one coefficient on the wire: ids, the full-precision
// displacement the reconstruction applies, the fitted position (single
// precision, enough for progressive point splatting before parents
// arrive), and the normalized value. At 48 bytes it matches
// wavelet.WireBytes, keeping the simulated and real byte accounting
// consistent. Whether a record is a base pseudo-coefficient follows from
// Vertex < Hello.BaseVerts.
type Coeff struct {
	Object int32
	Vertex int32
	Delta  geom.Vec3 // 3 × float64 = 24 bytes
	Pos    [3]float32
	Value  float32
}

// wireCoeffBytes is the on-the-wire size of one Coeff record.
const wireCoeffBytes = 4 + 4 + 24 + 12 + 4

func init() {
	if wireCoeffBytes != wavelet.WireBytes {
		panic("proto: wire size drifted from wavelet.WireBytes")
	}
}

// Response streams the coefficients answering one request. Seq numbers
// the responses of one session lineage (1 for the first frame), letting
// a resuming client prove how far it got.
//
// Dropped and Budget are the truncation metadata of a budgeted response
// (TagBudgetResponse): how many coefficients the server withheld to fit
// the budget, and the effective budget it applied (the request's
// MaxBytes, possibly clamped by a server-side cap). Both are 0 on plain
// responses — WriteResponse does not carry them, keeping the version-3
// layout untouched.
type Response struct {
	Coeffs  []Coeff
	IO      int64 // server-side index node reads (for experiment parity)
	Seq     int64
	Dropped int64
	Budget  int64
}

// Writer frames messages onto a stream.
type Writer struct {
	w       *bufio.Writer
	scratch [8]byte
	crc     uint32
	hashing bool
}

// NewWriter wraps a connection.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Reset discards unflushed state and retargets the writer at dst,
// keeping the buffer — the recycling hook for benchmark and pooling
// harnesses that would otherwise pay a fresh bufio buffer per stream.
func (w *Writer) Reset(dst io.Writer) {
	w.w.Reset(dst)
	w.hashing = false
}

// beginCRC starts accumulating a frame-body checksum.
func (w *Writer) beginCRC() { w.crc = 0; w.hashing = true }

// endCRC stops accumulating and appends the trailer (excluded from its
// own sum).
func (w *Writer) endCRC() {
	w.hashing = false
	binary.LittleEndian.PutUint32(w.scratch[:4], w.crc)
	w.w.Write(w.scratch[:4])
}

func (w *Writer) raw(b []byte) {
	w.w.Write(b)
	if w.hashing {
		w.crc = crc32.Update(w.crc, crcTable, b)
	}
}

func (w *Writer) u8(v byte) {
	w.scratch[0] = v
	w.raw(w.scratch[:1])
}

func (w *Writer) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.scratch[:4], v)
	w.raw(w.scratch[:4])
}

func (w *Writer) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.scratch[:8], v)
	w.raw(w.scratch[:8])
}

func (w *Writer) i32(v int32)   { w.u32(uint32(v)) }
func (w *Writer) i64(v int64)   { w.u64(uint64(v)) }
func (w *Writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *Writer) f32(v float32) { w.u32(math.Float32bits(v)) }

func (w *Writer) str(s string) {
	w.i32(int32(len(s)))
	if w.hashing {
		w.crc = crc32.Update(w.crc, crcTable, []byte(s))
	}
	w.w.WriteString(s)
}

// WriteHello sends the handshake.
func (w *Writer) WriteHello(h Hello) error {
	if len(h.Scene) > engine.MaxSceneName {
		return fmt.Errorf("proto: scene name of %d bytes exceeds limit %d",
			len(h.Scene), engine.MaxSceneName)
	}
	w.u8(TagHello)
	w.i32(h.Version)
	w.i32(h.Objects)
	w.i32(h.Levels)
	w.i32(h.BaseVerts)
	for _, f := range []float64{h.Space.Min.X, h.Space.Min.Y, h.Space.Max.X, h.Space.Max.Y} {
		w.f64(f)
	}
	w.u64(h.Token)
	w.str(h.Scene)
	return w.w.Flush()
}

// WriteSceneSelect asks the server to switch this connection to a named
// scene; the server answers with a fresh hello for it (or an error).
// Valid only before the first request or resume of a connection. The
// frame carries a CRC trailer: serving a corrupted name would bind the
// session to the wrong data set.
func (w *Writer) WriteSceneSelect(scene string) error {
	if err := engine.ValidateSceneName(scene); err != nil {
		return err
	}
	w.u8(TagScene)
	w.beginCRC()
	w.str(scene)
	w.endCRC()
	return w.w.Flush()
}

// writeRequestBody emits the speed + sub-query section shared by plain
// and budgeted request frames (the version-3 request body).
func (w *Writer) writeRequestBody(r Request) {
	w.f64(r.Speed)
	w.i32(int32(len(r.Subs)))
	for _, s := range r.Subs {
		for _, f := range []float64{
			s.Region.Min.X, s.Region.Min.Y, s.Region.Max.X, s.Region.Max.Y,
			s.WMin, s.WMax,
		} {
			w.f64(f)
		}
	}
}

// WriteRequest sends one query frame's sub-queries. MaxBytes is not
// carried (see Request); use WriteBudgetRequest for budgeted frames.
func (w *Writer) WriteRequest(r Request) error {
	if len(r.Subs) > MaxSubQueries {
		return fmt.Errorf("proto: %d sub-queries exceeds limit %d", len(r.Subs), MaxSubQueries)
	}
	w.u8(TagRequest)
	w.beginCRC()
	w.writeRequestBody(r)
	w.endCRC()
	return w.w.Flush()
}

// WriteBudgetRequest sends one budgeted query frame: the version-3
// request body prefixed with the byte budget (0 = unlimited), under the
// same CRC trailer discipline — a corrupted budget must surface as
// ErrChecksum, not as a silently absurd truncation.
func (w *Writer) WriteBudgetRequest(r Request) error {
	if len(r.Subs) > MaxSubQueries {
		return fmt.Errorf("proto: %d sub-queries exceeds limit %d", len(r.Subs), MaxSubQueries)
	}
	if r.MaxBytes < 0 {
		return fmt.Errorf("proto: negative byte budget %d", r.MaxBytes)
	}
	w.u8(TagBudgetRequest)
	w.beginCRC()
	w.i64(r.MaxBytes)
	w.writeRequestBody(r)
	w.endCRC()
	return w.w.Flush()
}

// WriteResponse streams the coefficients for one request.
func (w *Writer) WriteResponse(r Response) error {
	if len(r.Coeffs) > MaxCoeffs {
		return fmt.Errorf("proto: response of %d coefficients exceeds limit", len(r.Coeffs))
	}
	w.u8(TagResponse)
	w.beginCRC()
	w.i32(int32(len(r.Coeffs)))
	w.i64(r.IO)
	w.i64(r.Seq)
	for i := range r.Coeffs {
		c := &r.Coeffs[i]
		w.i32(c.Object)
		w.i32(c.Vertex)
		w.f64(c.Delta.X)
		w.f64(c.Delta.Y)
		w.f64(c.Delta.Z)
		w.f32(c.Pos[0])
		w.f32(c.Pos[1])
		w.f32(c.Pos[2])
		w.f32(c.Value)
	}
	w.endCRC()
	return w.w.Flush()
}

// appendCoeff appends one record in exactly the byte layout WriteResponse
// emits — the two encoders are pinned together by a test.
func appendCoeff(buf []byte, c *Coeff) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Object))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Vertex))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Delta.X))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Delta.Y))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Delta.Z))
	buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(c.Pos[0]))
	buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(c.Pos[1]))
	buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(c.Pos[2]))
	buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(c.Value))
	return buf
}

// EncodeResponsePayload appends the wire encoding of the coefficient
// records (the section of a response frame after count/IO/Seq) to buf.
// The hot-region cache stores these blobs so repeated responses skip
// per-record encoding; WriteResponsePayload replays them.
func EncodeResponsePayload(buf []byte, coeffs []Coeff) []byte {
	for i := range coeffs {
		buf = appendCoeff(buf, &coeffs[i])
	}
	return buf
}

// WriteResponsePayload writes a response frame whose coefficient section
// is a pre-encoded payload (EncodeResponsePayload bytes for count
// records). The emitted frame — CRC trailer included — is byte-identical
// to WriteResponse of the equivalent Coeffs slice.
func (w *Writer) WriteResponsePayload(count int, nodeIO, seq int64, payload []byte) error {
	if count > MaxCoeffs {
		return fmt.Errorf("proto: response of %d coefficients exceeds limit", count)
	}
	if len(payload) != count*wireCoeffBytes {
		return fmt.Errorf("proto: payload of %d bytes does not hold %d records", len(payload), count)
	}
	w.u8(TagResponse)
	w.beginCRC()
	w.i32(int32(count))
	w.i64(nodeIO)
	w.i64(seq)
	w.raw(payload)
	w.endCRC()
	return w.w.Flush()
}

// WriteBudgetResponsePayload writes a budgeted response frame: the
// plain response layout plus the truncation metadata (coefficients
// withheld, effective budget applied) between the header and the
// records. The coefficient section is the same pre-encoded payload
// WriteResponsePayload takes, so hot-cache blobs replay on both paths.
func (w *Writer) WriteBudgetResponsePayload(count int, nodeIO, seq, dropped, budget int64, payload []byte) error {
	if count > MaxCoeffs {
		return fmt.Errorf("proto: response of %d coefficients exceeds limit", count)
	}
	if len(payload) != count*wireCoeffBytes {
		return fmt.Errorf("proto: payload of %d bytes does not hold %d records", len(payload), count)
	}
	if dropped < 0 || budget < 0 {
		return fmt.Errorf("proto: negative truncation metadata (%d dropped, %d budget)", dropped, budget)
	}
	w.u8(TagBudgetResponse)
	w.beginCRC()
	w.i32(int32(count))
	w.i64(nodeIO)
	w.i64(seq)
	w.i64(dropped)
	w.i64(budget)
	w.raw(payload)
	w.endCRC()
	return w.w.Flush()
}

// WriteResume asks to adopt a previous session.
func (w *Writer) WriteResume(r Resume) error {
	w.u8(TagResume)
	w.beginCRC()
	w.u64(r.Token)
	w.i64(r.AppliedSeq)
	w.endCRC()
	return w.w.Flush()
}

// WriteResumeOK confirms a resume.
func (w *Writer) WriteResumeOK(r ResumeOK) error {
	w.u8(TagResumeOK)
	w.beginCRC()
	w.i64(r.Seq)
	w.i64(r.Delivered)
	w.endCRC()
	return w.w.Flush()
}

// WriteResumeFail declines a resume; the reason is capped and expected
// to be pre-sanitized (see SanitizeWireError).
func (w *Writer) WriteResumeFail(reason string) error {
	if len(reason) > MaxWireErrorLen {
		reason = reason[:MaxWireErrorLen]
	}
	w.u8(TagResumeFail)
	w.beginCRC()
	w.str(reason)
	w.endCRC()
	return w.w.Flush()
}

// WriteError sends an error message, capped at MaxWireErrorLen so no
// conforming writer can emit a frame the reader's length limit rejects.
func (w *Writer) WriteError(msg string) error {
	if len(msg) > MaxWireErrorLen {
		msg = msg[:MaxWireErrorLen]
	}
	w.u8(TagError)
	w.str(msg)
	return w.w.Flush()
}

// WriteBye announces an orderly shutdown.
func (w *Writer) WriteBye() error {
	w.u8(TagBye)
	return w.w.Flush()
}

// Reader parses framed messages from a stream.
type Reader struct {
	r       *bufio.Reader
	scratch [8]byte
	crc     uint32
	hashing bool
	// subs is the reusable sub-query slab behind ReadRequest — see its
	// aliasing contract.
	subs []retrieval.SubQuery
}

// NewReader wraps a connection.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Reset retargets the reader at src, keeping its buffers (bufio buffer
// and sub-query slab) — the recycling hook for benchmark and pooling
// harnesses. Any partially read frame state is discarded.
func (r *Reader) Reset(src io.Reader) {
	r.r.Reset(src)
	r.hashing = false
}

// Buffered returns the number of bytes the Reader has read from its
// stream but not yet consumed by a decoder.
func (r *Reader) Buffered() int { return r.r.Buffered() }

// WriteBufferedTo drains the Reader's buffered bytes into w, returning
// how many moved. A proxy that stops decoding a stream mid-connection
// (the cluster gateway after its routing handshake) must flush this
// remainder before splicing the raw connections together, or bytes the
// Reader had already pulled off the socket would be lost.
func (r *Reader) WriteBufferedTo(w io.Writer) (int64, error) {
	n := r.r.Buffered()
	if n == 0 {
		return 0, nil
	}
	b, err := r.r.Peek(n)
	if err != nil {
		return 0, err
	}
	m, werr := w.Write(b)
	r.r.Discard(m)
	return int64(m), werr
}

// bufPool recycles the transient byte buffers string decoding reads
// into (the string itself is always a fresh copy, so pooled buffers
// never escape). Oversized requests bypass the pool — see readStringN.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 256)
	return &b
}}

// maxPooledBuf bounds what readStringN returns to the pool, so one
// maximum-length error string doesn't pin a megabyte per idle reader.
const maxPooledBuf = 64 << 10

// readStringN reads exactly n bytes (folded into the running checksum)
// and returns them as a string, routing the transient buffer through
// bufPool.
func (r *Reader) readStringN(n int) (string, error) {
	if n == 0 {
		return "", nil
	}
	if n > maxPooledBuf {
		buf := make([]byte, n)
		if err := r.fill(buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	bp := bufPool.Get().(*[]byte)
	buf := *bp
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	err := r.fill(buf)
	s := ""
	if err == nil {
		s = string(buf)
	}
	*bp = buf
	bufPool.Put(bp)
	return s, err
}

// beginCRC starts accumulating a frame-body checksum.
func (r *Reader) beginCRC() { r.crc = 0; r.hashing = true }

// checkCRC reads the trailer and compares it against the accumulated
// body sum.
func (r *Reader) checkCRC() error {
	r.hashing = false
	want := r.crc
	if _, err := io.ReadFull(r.r, r.scratch[:4]); err != nil {
		return err
	}
	if got := binary.LittleEndian.Uint32(r.scratch[:4]); got != want {
		return ErrChecksum
	}
	return nil
}

// fill reads into buf and folds it into the running checksum.
func (r *Reader) fill(buf []byte) error {
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return err
	}
	if r.hashing {
		r.crc = crc32.Update(r.crc, crcTable, buf)
	}
	return nil
}

func (r *Reader) u8() (byte, error) {
	if err := r.fill(r.scratch[:1]); err != nil {
		return 0, err
	}
	return r.scratch[0], nil
}

func (r *Reader) u32() (uint32, error) {
	if err := r.fill(r.scratch[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(r.scratch[:4]), nil
}

func (r *Reader) u64() (uint64, error) {
	if err := r.fill(r.scratch[:8]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(r.scratch[:8]), nil
}

func (r *Reader) i32() (int32, error) {
	v, err := r.u32()
	return int32(v), err
}

func (r *Reader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

func (r *Reader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *Reader) f32() (float32, error) {
	v, err := r.u32()
	return math.Float32frombits(v), err
}

// ReadTag returns the next message tag.
func (r *Reader) ReadTag() (byte, error) {
	r.hashing = false
	return r.u8()
}

// ReadHello parses a hello body (after its tag).
func (r *Reader) ReadHello() (Hello, error) {
	var h Hello
	var err error
	if h.Version, err = r.i32(); err != nil {
		return h, err
	}
	if h.Objects, err = r.i32(); err != nil {
		return h, err
	}
	if h.Levels, err = r.i32(); err != nil {
		return h, err
	}
	if h.BaseVerts, err = r.i32(); err != nil {
		return h, err
	}
	var fs [4]float64
	for i := range fs {
		if fs[i], err = r.f64(); err != nil {
			return h, err
		}
	}
	h.Space = geom.Rect2{Min: geom.V2(fs[0], fs[1]), Max: geom.V2(fs[2], fs[3])}
	if h.Token, err = r.u64(); err != nil {
		return h, err
	}
	if h.Scene, err = r.readSceneName(); err != nil {
		return h, err
	}
	if h.Version != Version {
		return h, fmt.Errorf("proto: version %d, want %d", h.Version, Version)
	}
	return h, nil
}

// readSceneName reads a length-prefixed scene name bounded by
// engine.MaxSceneName (empty = unnamed/default scene).
func (r *Reader) readSceneName() (string, error) {
	n, err := r.i32()
	if err != nil {
		return "", err
	}
	if n < 0 || n > engine.MaxSceneName {
		return "", fmt.Errorf("proto: bad scene name length %d", n)
	}
	return r.readStringN(int(n))
}

// ReadSceneSelect parses a scene-select body (after its tag), verifies
// its checksum, then validates the name.
func (r *Reader) ReadSceneSelect() (string, error) {
	r.beginCRC()
	scene, err := r.readSceneName()
	if err != nil {
		return "", err
	}
	if err := r.checkCRC(); err != nil {
		return "", err
	}
	// Validate only after the checksum: a corrupted frame should be
	// reported as corruption, not as an invalid name.
	if err := engine.ValidateSceneName(scene); err != nil {
		return "", err
	}
	return scene, nil
}

// finite rejects the NaN/Inf values a corrupted or hostile frame could
// otherwise push into the index search path.
func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// ReadRequest parses and validates a request body (after its tag): the
// checksum must match, the speed must be finite, and every sub-query
// rectangle must be finite and non-inverted with WMin ≤ WMax.
//
// Aliasing: the returned Request's Subs slice is the Reader's reusable
// scratch, valid only until the next ReadRequest on this Reader. The
// serving loop consumes each request before reading the next frame;
// callers that retain sub-queries across frames must copy them.
func (r *Reader) ReadRequest() (Request, error) {
	var req Request
	r.beginCRC()
	if err := r.readRequestBody(&req); err != nil {
		return req, err
	}
	if err := r.checkCRC(); err != nil {
		return req, err
	}
	return req, r.validateRequest(&req)
}

// ReadBudgetRequest parses and validates a budgeted request body (after
// its tag): the byte budget, then the version-3 request body, under one
// checksum. The budget must be non-negative (0 = unlimited). The Subs
// aliasing contract of ReadRequest applies.
func (r *Reader) ReadBudgetRequest() (Request, error) {
	var req Request
	var err error
	r.beginCRC()
	if req.MaxBytes, err = r.i64(); err != nil {
		return req, err
	}
	if err := r.readRequestBody(&req); err != nil {
		return req, err
	}
	if err := r.checkCRC(); err != nil {
		return req, err
	}
	// Validate only after the checksum: a corrupted frame should be
	// reported as corruption, not as a bad budget.
	if req.MaxBytes < 0 {
		return req, fmt.Errorf("proto: negative byte budget %d", req.MaxBytes)
	}
	return req, r.validateRequest(&req)
}

// readRequestBody decodes the speed + sub-query section shared by plain
// and budgeted requests into the Reader's reusable slab.
func (r *Reader) readRequestBody(req *Request) error {
	var err error
	if req.Speed, err = r.f64(); err != nil {
		return err
	}
	n, err := r.i32()
	if err != nil {
		return err
	}
	if n < 0 || n > MaxSubQueries {
		return fmt.Errorf("proto: bad sub-query count %d", n)
	}
	if cap(r.subs) < int(n) {
		r.subs = make([]retrieval.SubQuery, n)
	}
	req.Subs = r.subs[:n]
	for i := range req.Subs {
		var fs [6]float64
		for j := range fs {
			if fs[j], err = r.f64(); err != nil {
				return err
			}
		}
		// Whole-struct assignment: a reused slab slot must not leak the
		// previous frame's Filter.
		req.Subs[i] = retrieval.SubQuery{
			Region: geom.Rect2{Min: geom.V2(fs[0], fs[1]), Max: geom.V2(fs[2], fs[3])},
			WMin:   fs[4],
			WMax:   fs[5],
		}
	}
	return nil
}

// validateRequest applies the post-checksum semantic checks shared by
// plain and budgeted requests: a corrupted frame is reported as
// corruption first, garbage fields second.
func (r *Reader) validateRequest(req *Request) error {
	if !finite(req.Speed) {
		return fmt.Errorf("proto: non-finite speed")
	}
	for i, s := range req.Subs {
		if !finite(s.Region.Min.X, s.Region.Min.Y, s.Region.Max.X, s.Region.Max.Y, s.WMin, s.WMax) {
			return fmt.Errorf("proto: sub-query %d has non-finite bounds", i)
		}
		if s.Region.Max.X < s.Region.Min.X || s.Region.Max.Y < s.Region.Min.Y {
			return fmt.Errorf("proto: sub-query %d has an inverted rectangle", i)
		}
		if s.WMin > s.WMax {
			return fmt.Errorf("proto: sub-query %d has wmin %g > wmax %g", i, s.WMin, s.WMax)
		}
	}
	return nil
}

// ReadResponse parses a response body (after its tag) and verifies its
// checksum. The response is freshly allocated; steady-state readers use
// ReadResponseInto to recycle the coefficient slab.
func (r *Reader) ReadResponse() (Response, error) {
	var resp Response
	err := r.ReadResponseInto(&resp)
	return resp, err
}

// ReadResponseInto is ReadResponse decoding into resp, reusing its
// Coeffs slab (truncated, then appended to); IO and Seq are overwritten.
// On error resp holds whatever partial state was decoded and must not be
// used.
func (r *Reader) ReadResponseInto(resp *Response) error {
	return r.readResponseInto(resp, false)
}

// ReadBudgetResponseInto is ReadResponseInto for a budgeted response
// frame (after its TagBudgetResponse tag): the plain layout plus the
// truncation metadata, which must be non-negative.
func (r *Reader) ReadBudgetResponseInto(resp *Response) error {
	return r.readResponseInto(resp, true)
}

func (r *Reader) readResponseInto(resp *Response, budget bool) error {
	r.beginCRC()
	n, err := r.i32()
	if err != nil {
		return err
	}
	if n < 0 || n > MaxCoeffs {
		return fmt.Errorf("proto: bad coefficient count %d", n)
	}
	if resp.IO, err = r.i64(); err != nil {
		return err
	}
	if resp.Seq, err = r.i64(); err != nil {
		return err
	}
	resp.Dropped, resp.Budget = 0, 0
	if budget {
		if resp.Dropped, err = r.i64(); err != nil {
			return err
		}
		if resp.Budget, err = r.i64(); err != nil {
			return err
		}
	}
	if resp.Coeffs == nil {
		// Grow incrementally: a corrupted-but-in-range count must not
		// pre-allocate gigabytes before the stream runs dry.
		alloc := int(n)
		if alloc > 4096 {
			alloc = 4096
		}
		resp.Coeffs = make([]Coeff, 0, alloc)
	}
	resp.Coeffs = resp.Coeffs[:0]
	for i := 0; i < int(n); i++ {
		var c Coeff
		if c.Object, err = r.i32(); err != nil {
			return err
		}
		if c.Vertex, err = r.i32(); err != nil {
			return err
		}
		if c.Delta.X, err = r.f64(); err != nil {
			return err
		}
		if c.Delta.Y, err = r.f64(); err != nil {
			return err
		}
		if c.Delta.Z, err = r.f64(); err != nil {
			return err
		}
		for j := 0; j < 3; j++ {
			if c.Pos[j], err = r.f32(); err != nil {
				return err
			}
		}
		if c.Value, err = r.f32(); err != nil {
			return err
		}
		resp.Coeffs = append(resp.Coeffs, c)
	}
	if err := r.checkCRC(); err != nil {
		return err
	}
	if resp.Dropped < 0 || resp.Budget < 0 {
		return fmt.Errorf("proto: negative truncation metadata (%d dropped, %d budget)", resp.Dropped, resp.Budget)
	}
	return nil
}

// ReadResume parses a resume body (after its tag) and verifies its
// checksum.
func (r *Reader) ReadResume() (Resume, error) {
	var res Resume
	var err error
	r.beginCRC()
	if res.Token, err = r.u64(); err != nil {
		return res, err
	}
	if res.AppliedSeq, err = r.i64(); err != nil {
		return res, err
	}
	if err := r.checkCRC(); err != nil {
		return res, err
	}
	if res.AppliedSeq < 0 {
		return res, fmt.Errorf("proto: negative resume sequence %d", res.AppliedSeq)
	}
	return res, nil
}

// ReadResumeOK parses a resume confirmation (after its tag) and verifies
// its checksum.
func (r *Reader) ReadResumeOK() (ResumeOK, error) {
	var ok ResumeOK
	var err error
	r.beginCRC()
	if ok.Seq, err = r.i64(); err != nil {
		return ok, err
	}
	if ok.Delivered, err = r.i64(); err != nil {
		return ok, err
	}
	if err := r.checkCRC(); err != nil {
		return ok, err
	}
	return ok, nil
}

// ReadResumeFail parses a resume rejection (after its tag) and verifies
// its checksum.
func (r *Reader) ReadResumeFail() (string, error) {
	r.beginCRC()
	msg, err := r.readString()
	if err != nil {
		return "", err
	}
	if err := r.checkCRC(); err != nil {
		return "", err
	}
	return msg, nil
}

// ReadError parses an error body (after its tag).
func (r *Reader) ReadError() (string, error) {
	return r.readString()
}

func (r *Reader) readString() (string, error) {
	n, err := r.i32()
	if err != nil {
		return "", err
	}
	if n < 0 || n > 1<<20 {
		return "", fmt.Errorf("proto: bad error length %d", n)
	}
	return r.readStringN(int(n))
}
