package engine

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/retrieval"
	"repro/internal/stats"
	"repro/internal/workload"
)

func testDataset(t testing.TB, n int, seed int64) *workload.Dataset {
	t.Helper()
	return workload.Generate(workload.Spec{
		NumObjects: n, Levels: 3, Seed: seed, DropFinals: true})
}

// buildRegistry builds a two-scene registry ("city" default, "park")
// over small generated datasets.
func buildRegistry(t testing.TB, st *stats.Stats) *Registry {
	t.Helper()
	reg := NewRegistry()
	for i, name := range []string{"city", "park"} {
		if _, err := reg.Build(SceneConfig{
			Name: name, Dataset: testDataset(t, 2+i, int64(i+1)),
			Levels: 3, Shards: 1 + i, Stats: st}); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func TestSaveAllLoadAllRoundtrip(t *testing.T) {
	dir := t.TempDir()
	st := stats.New()
	reg := buildRegistry(t, st)
	if err := reg.SaveAll(dir, st); err != nil {
		t.Fatalf("SaveAll: %v", err)
	}
	snap := st.Snapshot()
	if snap.Checkpoints != 2 || snap.CheckpointBytes <= 0 {
		t.Fatalf("checkpoint counters = %d / %d bytes", snap.Checkpoints, snap.CheckpointBytes)
	}

	st2 := stats.New()
	reg2 := NewRegistry()
	n, err := reg2.LoadAll(dir, st2)
	if err != nil || n != 2 {
		t.Fatalf("LoadAll = %d, %v", n, err)
	}
	snap2 := st2.Snapshot()
	if snap2.TailsTruncated != 0 || snap2.RecordsQuarantined != 0 {
		t.Fatalf("clean load reported damage: %+v", snap2)
	}
	if snap2.RecordsReplayed != 4 { // 2 scenes × (meta + dataset)
		t.Fatalf("RecordsReplayed = %d, want 4", snap2.RecordsReplayed)
	}
	// Order, shape, and content survive.
	if def := reg2.Default(); def == nil || def.Name != "city" {
		t.Fatalf("default scene = %v", reg2.Names())
	}
	for _, name := range []string{"city", "park"} {
		orig, _ := reg.Get(name)
		got, ok := reg2.Get(name)
		if !ok {
			t.Fatalf("scene %q lost", name)
		}
		if got.Levels != orig.Levels || got.Shards != orig.Shards {
			t.Fatalf("scene %q: levels %d/%d shards %d/%d",
				name, got.Levels, orig.Levels, got.Shards, orig.Shards)
		}
		if got.Source.NumCoeffs() != orig.Source.NumCoeffs() {
			t.Fatalf("scene %q: %d coeffs, want %d",
				name, got.Source.NumCoeffs(), orig.Source.NumCoeffs())
		}
		if got.Dataset == nil {
			t.Fatalf("scene %q restored without dataset", name)
		}
	}
}

func TestLoadAllTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	st := stats.New()
	reg := buildRegistry(t, st)
	if err := reg.SaveAll(dir, st); err != nil {
		t.Fatal(err)
	}
	// Tear the city checkpoint: append a partial record, as a crash
	// during a (hypothetical) in-place write would.
	path := CheckpointPath(dir, "city")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 0xAB}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2 := stats.New()
	reg2 := NewRegistry()
	n, err := reg2.LoadAll(dir, st2)
	if err != nil || n != 2 {
		t.Fatalf("LoadAll = %d, %v", n, err)
	}
	snap := st2.Snapshot()
	if snap.TailsTruncated != 1 {
		t.Fatalf("TailsTruncated = %d, want 1", snap.TailsTruncated)
	}
	// Nothing invented: the scene's content matches the original.
	orig, _ := reg.Get("city")
	got, _ := reg2.Get("city")
	if got.Source.NumCoeffs() != orig.Source.NumCoeffs() {
		t.Fatalf("torn-tail load changed content: %d vs %d coeffs",
			got.Source.NumCoeffs(), orig.Source.NumCoeffs())
	}
}

func TestLoadAllSkipsHopelessFile(t *testing.T) {
	dir := t.TempDir()
	st := stats.New()
	reg := buildRegistry(t, st)
	if err := reg.SaveAll(dir, st); err != nil {
		t.Fatal(err)
	}
	// Destroy the park checkpoint's header entirely.
	if err := os.WriteFile(CheckpointPath(dir, "park"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := stats.New()
	reg2 := NewRegistry()
	n, err := reg2.LoadAll(dir, st2)
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if n != 1 {
		t.Fatalf("loaded %d scenes, want just the intact one", n)
	}
	if _, ok := reg2.Get("city"); !ok {
		t.Fatal("intact scene lost")
	}
}

func TestLoadAllEmptyDir(t *testing.T) {
	reg := NewRegistry()
	n, err := reg.LoadAll(t.TempDir(), stats.New())
	if err != nil || n != 0 {
		t.Fatalf("empty dir: n=%d err=%v", n, err)
	}
}

func TestCheckpointerStopSavesKillDoesNot(t *testing.T) {
	st := stats.New()
	reg := buildRegistry(t, st)

	// Stop: a final save happens even if no tick ever fired.
	stopDir := filepath.Join(t.TempDir(), "stop")
	c := reg.StartCheckpointer(stopDir, time.Hour, st, t.Logf)
	c.Stop()
	c.Stop() // idempotent
	if matches, _ := filepath.Glob(filepath.Join(stopDir, "scene-*")); len(matches) != 2 {
		t.Fatalf("Stop left %d checkpoints, want 2", len(matches))
	}

	// Kill: nothing is written.
	killDir := filepath.Join(t.TempDir(), "kill")
	c = reg.StartCheckpointer(killDir, time.Hour, st, t.Logf)
	c.Kill()
	if matches, _ := filepath.Glob(filepath.Join(killDir, "scene-*")); len(matches) != 0 {
		t.Fatalf("Kill wrote %d checkpoints, want 0", len(matches))
	}
}

func TestSceneWithoutDatasetSkipped(t *testing.T) {
	st := stats.New()
	reg := NewRegistry()
	if _, err := reg.Build(SceneConfig{
		Name: "bare", Source: testStore(t, 2, 9), Levels: 3, Stats: st}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := reg.SaveAll(dir, st); err != nil {
		t.Fatal(err)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "scene-*")); len(matches) != 0 {
		t.Fatalf("bare scene checkpointed: %v", matches)
	}
	if st.Snapshot().Checkpoints != 0 {
		t.Fatal("checkpoint counter moved for a bare scene")
	}
}

func TestSessionJournalParkTakeRestore(t *testing.T) {
	st := stats.New()
	reg := buildRegistry(t, st)
	path := filepath.Join(t.TempDir(), SessionJournalFile)
	j, err := OpenSessionJournal(path, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	reg.SetSessionJournal(j)

	city, _ := reg.Get("city")
	park, _ := reg.Get("park")

	// Park two sessions with distinct state; take one back.
	s1 := retrieval.NewSession(city.Server)
	s1.Retrieve([]retrieval.SubQuery{{Region: city.Source.Bounds().XY(), WMin: 0, WMax: 1}})
	if s1.Delivered() == 0 {
		t.Fatal("test session delivered nothing")
	}
	e1 := &ResumeEntry{Session: s1, Seq: 3, LastIDs: []int64{1, 2}}
	city.Resume.Put(101, e1)

	s2 := retrieval.NewSession(park.Server)
	park.Resume.Put(202, &ResumeEntry{Session: s2, Seq: 1})

	s3 := retrieval.NewSession(city.Server)
	city.Resume.Put(303, &ResumeEntry{Session: s3, Seq: 2})
	if _, ok := city.Resume.Take(303); !ok {
		t.Fatal("take failed")
	}

	if got := j.Parks(); got != 3 {
		t.Fatalf("Parks = %d, want 3", got)
	}
	if got := j.Live(); got != 2 {
		t.Fatalf("Live = %d, want 2", got)
	}
	j.Close()

	// "Restart": fresh registry from the same datasets, journal replayed.
	st2 := stats.New()
	reg2 := buildRegistry(t, st2)
	j2, err := OpenSessionJournal(path, 0, st2)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	reg2.SetSessionJournal(j2)
	if restored := j2.Restore(reg2); restored != 2 {
		t.Fatalf("Restore = %d, want 2", restored)
	}
	if st2.Snapshot().RecordsReplayed == 0 {
		t.Fatal("replay not counted")
	}

	city2, _ := reg2.Get("city")
	got, ok := city2.Resume.Take(101)
	if !ok {
		t.Fatal("restored session not resumable")
	}
	if !got.Restored || got.Seq != 3 || len(got.LastIDs) != 2 {
		t.Fatalf("restored entry = %+v", got)
	}
	if got.Session.Delivered() != s1.Delivered() {
		t.Fatalf("delivered set %d, want %d", got.Session.Delivered(), s1.Delivered())
	}
	for _, id := range s1.DeliveredIDs() {
		if !got.Session.Has(id) {
			t.Fatalf("restored session missing id %d", id)
		}
	}
	// The taken token must not come back on a second restore pass.
	park2, _ := reg2.Get("park")
	if park2.Resume.Len() != 1 {
		t.Fatalf("park cache = %d entries, want 1", park2.Resume.Len())
	}
	if _, ok := city2.Resume.Take(303); ok {
		t.Fatal("tombstoned session resurrected")
	}
}

func TestSessionJournalExpiredNotRestored(t *testing.T) {
	st := stats.New()
	reg := buildRegistry(t, st)
	reg.SetResumeCache(16, time.Millisecond)
	path := filepath.Join(t.TempDir(), SessionJournalFile)
	j, err := OpenSessionJournal(path, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	reg.SetSessionJournal(j)
	city, _ := reg.Get("city")
	city.Resume.Put(7, &ResumeEntry{Session: retrieval.NewSession(city.Server)})
	j.Close()
	time.Sleep(5 * time.Millisecond)

	st2 := stats.New()
	reg2 := buildRegistry(t, st2)
	j2, err := OpenSessionJournal(path, 0, st2)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if restored := j2.Restore(reg2); restored != 0 {
		t.Fatalf("expired session restored (%d)", restored)
	}
}

func TestSessionJournalCompaction(t *testing.T) {
	st := stats.New()
	reg := buildRegistry(t, st)
	path := filepath.Join(t.TempDir(), SessionJournalFile)
	// Tiny bound so churn triggers compaction quickly.
	j, err := OpenSessionJournal(path, 4096, st)
	if err != nil {
		t.Fatal(err)
	}
	reg.SetSessionJournal(j)
	city, _ := reg.Get("city")
	for i := uint64(1); i <= 200; i++ {
		city.Resume.Put(i, &ResumeEntry{Session: retrieval.NewSession(city.Server), Seq: int64(i)})
		if i > 1 {
			city.Resume.Take(i - 1)
		}
	}
	if st.Snapshot().JournalCompactions == 0 {
		t.Fatal("no compaction despite churn past the bound")
	}
	if size := j.j.Size(); size > 64*1024 {
		t.Fatalf("journal grew unboundedly: %d bytes", size)
	}
	j.Close()

	// The compacted journal still replays to exactly the live set.
	st2 := stats.New()
	reg2 := buildRegistry(t, st2)
	j2, err := OpenSessionJournal(path, 4096, st2)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if restored := j2.Restore(reg2); restored != 1 {
		t.Fatalf("Restore after compaction = %d, want 1", restored)
	}
	city2, _ := reg2.Get("city")
	if e, ok := city2.Resume.Take(200); !ok || e.Seq != 200 {
		t.Fatalf("survivor = %+v ok=%v", e, ok)
	}
}

func TestSessionJournalKillFreezesDisk(t *testing.T) {
	st := stats.New()
	reg := buildRegistry(t, st)
	path := filepath.Join(t.TempDir(), SessionJournalFile)
	j, err := OpenSessionJournal(path, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	reg.SetSessionJournal(j)
	city, _ := reg.Get("city")
	city.Resume.Put(1, &ResumeEntry{Session: retrieval.NewSession(city.Server)})
	j.Kill()
	// Post-kill parks still work in memory but never reach disk.
	city.Resume.Put(2, &ResumeEntry{Session: retrieval.NewSession(city.Server)})
	if city.Resume.Len() != 2 {
		t.Fatalf("in-memory cache = %d, want 2", city.Resume.Len())
	}
	if j.Parks() != 1 {
		t.Fatalf("Parks = %d, want 1 (post-kill park counted)", j.Parks())
	}
	j.Close()

	st2 := stats.New()
	j2, err := OpenSessionJournal(path, 0, st2)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Live() != 1 {
		t.Fatalf("disk has %d live sessions, want 1", j2.Live())
	}
}
