// Streaming: the full client/server stack over a real TCP socket in one
// process. A protocol server (internal/proto) serves a generated city on
// a loopback listener; a pedestrian client connects, walks a tour issuing
// one continuous window query per step, and reports the stream: bytes,
// coefficients, per-object reconstruction progress.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"sort"

	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/motion"
	"repro/internal/proto"
	"repro/internal/retrieval"
	"repro/internal/rtree"
	"repro/internal/workload"
)

func main() {
	// Server side: generate, index, serve on an ephemeral loopback port.
	dataset := workload.Generate(workload.Spec{NumObjects: 30, Levels: 4, Seed: 11})
	idx := index.NewMotionAware(dataset.Store, index.XYW, rtree.Config{})
	server := proto.NewServer(retrieval.NewServer(dataset.Store, idx),
		dataset.Spec.Levels, nil)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go server.Serve(lis)
	defer server.Close()
	fmt.Printf("server: %v on %v\n", dataset, lis.Addr())

	// Client side: dial, walk, stream.
	client, err := proto.Dial(lis.Addr().String(), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	tour := motion.NewTour(motion.Pedestrian, motion.TourSpec{
		Space: client.Space(),
		Steps: 150,
		Speed: 0.4,
	}, rand.New(rand.NewSource(5)))
	side := client.Space().Width() * 0.15

	for i, pos := range tour.Pos {
		n, err := client.Frame(geom.RectAround(pos, side), tour.SpeedAt(i))
		if err != nil {
			log.Fatalf("frame %d: %v", i, err)
		}
		if (i+1)%30 == 0 {
			fmt.Printf("frame %3d: +%5d coefficients, %6.1f KB so far, %d objects in view history\n",
				i+1, n, float64(client.BytesReceived)/1024, len(client.Objects()))
		}
	}

	// Reconstruction progress per object, most complete first.
	ids := client.Objects()
	sort.Slice(ids, func(a, b int) bool {
		return client.CoeffCount(ids[a]) > client.CoeffCount(ids[b])
	})
	fmt.Printf("\nstreamed %.1f KB, %d coefficients, server spent %d node reads\n",
		float64(client.BytesReceived)/1024, client.Coefficients, client.ServerIO)
	fmt.Println("\nmost-refined objects:")
	for i, id := range ids {
		if i == 5 {
			break
		}
		total := dataset.Store.Objects[id].NumCoeffs()
		m, _ := client.Mesh(id)
		fmt.Printf("  object %2d: %5d/%d coefficients (%.0f%%), mesh %d verts / %d faces\n",
			id, client.CoeffCount(id), total,
			100*float64(client.CoeffCount(id))/float64(total),
			m.NumVerts(), m.NumFaces())
	}
}
