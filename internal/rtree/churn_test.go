package rtree

import (
	"math/rand"
	"testing"
)

// walkRefs traverses from the root counting leaf entries and how many
// parents reference each node. A structurally sound tree references every
// node exactly once.
func walkRefs(t *Tree) (leafEntries int, refs map[*node]int) {
	refs = make(map[*node]int)
	var walk func(n *node)
	walk = func(n *node) {
		refs[n]++
		if n.leaf {
			leafEntries += len(n.entries)
			return
		}
		for i := range n.entries {
			walk(n.entries[i].child)
		}
	}
	walk(t.root)
	return
}

// TestBulkLoadedTreeSurvivesChurn is the regression test for the slab
// aliasing bug: strTile's base case used to hand a node a window of the
// level-wide entry slice, so a post-bulk-load Insert appending into that
// node overwrote the first entry of the adjacent node's window — one
// subtree referenced twice, another lost. Mass-delete then reinsert on a
// bulk-loaded tree reproduced it deterministically.
func TestBulkLoadedTreeSurvivesChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 1548
	items := make([]Item, n)
	for i := range items {
		x, y := rng.Float64()*900, rng.Float64()*900
		w, h := rng.Float64()*40, rng.Float64()*40
		var r Rect
		r.Lo[0], r.Hi[0] = x, x+w
		r.Lo[1], r.Hi[1] = y, y+h
		r.Lo[2], r.Hi[2] = rng.Float64(), 1
		items[i] = Item{Rect: r, Data: int64(i)}
	}
	tr := BulkLoad(Config{Dims: 3, MaxEntries: 20}, items)

	check := func(stage string, wantLen int) {
		t.Helper()
		if tr.Len() != wantLen {
			t.Fatalf("%s: len %d, want %d", stage, tr.Len(), wantLen)
		}
		leaves, refs := walkRefs(tr)
		for nd, c := range refs {
			if c > 1 {
				t.Fatalf("%s: node %p referenced %d times", stage, nd, c)
			}
		}
		if leaves != wantLen {
			t.Fatalf("%s: traversal found %d leaf entries, want %d", stage, leaves, wantLen)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
	}
	check("after bulk load", n)

	// Delete a contiguous block (the shape of removing one object's
	// coefficients), then reinsert it, twice over.
	const churn = 258
	for round := 0; round < 2; round++ {
		for j := 0; j < churn; j++ {
			if !tr.Delete(items[j].Rect, items[j].Data) {
				t.Fatalf("round %d: delete %d failed", round, j)
			}
		}
		check("after deletes", n-churn)
		for j := 0; j < churn; j++ {
			tr.Insert(items[j].Rect, items[j].Data)
		}
		check("after reinserts", n)
	}

	// Every item is still retrievable by its exact rectangle.
	got := make(map[int64]bool, n)
	tr.Scan(func(_ Rect, data int64) bool { got[data] = true; return true })
	if len(got) != n {
		t.Fatalf("scan found %d distinct items, want %d", len(got), n)
	}
}
