package proto

import (
	"net"
	"testing"
	"time"
)

// reserveDeadAddr binds an ephemeral port and immediately releases it,
// returning an address that refuses connections for the rest of the
// test (nothing re-listens on it).
func reserveDeadAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

// TestResilientAddrRotation is the regression test for the address-list
// dial path: with the first address permanently dead, the initial
// connect must rotate to the live replica, and after the server severs
// the connection mid-session the client must re-dial and resume —
// proving a dead head entry costs retries, not the session.
func TestResilientAddrRotation(t *testing.T) {
	dead := reserveDeadAddr(t)
	live, d, srv, _, shutdown := startHardenedServer(t, nil)
	defer shutdown()

	rc, err := DialResilient(ResilientConfig{
		Addrs:        []string{dead, live},
		FrameTimeout: 5 * time.Second,
		DialTimeout:  500 * time.Millisecond,
		MaxAttempts:  8,
		BackoffBase:  time.Millisecond,
		BackoffMax:   10 * time.Millisecond,
		Seed:         3,
	})
	if err != nil {
		t.Fatalf("connect through dead head address: %v", err)
	}
	defer rc.Close()
	if got := rc.Addr(); got != live {
		t.Fatalf("rotation pinned to %q, want live replica %q", got, live)
	}

	space := d.Store.Bounds().XY()
	frames := soakTrajectory(11, 6, space)
	for i, f := range frames[:3] {
		if _, err := rc.Frame(f.q, f.speed); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}

	// Sever the live connection server-side (the drain hook); the next
	// frame must re-dial — still skipping the dead head — and resume.
	if n := srv.SeverScene(DefaultSceneName); n != 1 {
		t.Fatalf("SeverScene closed %d conns, want 1", n)
	}
	for i, f := range frames[3:] {
		if _, err := rc.Frame(f.q, f.speed); err != nil {
			t.Fatalf("frame %d after sever: %v", i+3, err)
		}
	}
	if rc.Resumes != 1 {
		t.Fatalf("Resumes = %d, want 1 (session must survive the sever)", rc.Resumes)
	}
	if rc.Replans != 0 {
		t.Fatalf("Replans = %d, want 0 (resume must hit, not re-plan)", rc.Replans)
	}
	if got := rc.Addr(); got != live {
		t.Fatalf("after reconnect rotation pinned to %q, want %q", got, live)
	}
}
