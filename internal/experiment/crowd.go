package experiment

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/hotcache"
	"repro/internal/index"
	"repro/internal/proto"
	"repro/internal/retrieval"
	"repro/internal/stats"
	"repro/internal/workload"
)

// crowdScene names the scene both crowd-serving servers expose.
const crowdScene = "plaza"

// CrowdRunSpec configures the crowd-serving acceptance soak: a flocked
// crowd tours two identically built servers over the wire — one with
// the coalescer and the hot-region subscription layer enabled, one
// serving every session independently — and every frame of every client
// must come back identical, coefficient for coefficient and I/O count
// for I/O count, across a forced mid-soak index mutation. The zero
// value gets quick-scale defaults sized for CI.
type CrowdRunSpec struct {
	Seed       int64
	Objects    int     // dataset size (default 48)
	Levels     int     // subdivision depth (default 3)
	Clients    int     // crowd size (default 16)
	Steps      int     // lockstep frames per client (default 36)
	Attractors int     // shared attractor paths (default 3)
	Overlap    float64 // flocked fraction (default 0.75; negative → 0)
	Shards     int     // index shard count per scene
}

func (s CrowdRunSpec) fill() CrowdRunSpec {
	if s.Objects == 0 {
		s.Objects = 48
	}
	if s.Levels == 0 {
		s.Levels = 3
	}
	if s.Clients == 0 {
		s.Clients = 16
	}
	if s.Steps == 0 {
		s.Steps = 36
	}
	if s.Attractors == 0 {
		s.Attractors = 3
	}
	if s.Overlap == 0 {
		s.Overlap = 0.75
	}
	if s.Overlap < 0 {
		s.Overlap = 0
	}
	return s
}

// crowdFrame is one lockstep step of one client.
type crowdFrame struct {
	q     geom.Rect2
	speed float64
}

// crowdSession drives one raw wire session through the lockstep soak:
// it blocks on the shared per-step barrier, issues its frame, records
// the full parsed response, and signals the step's completion group.
// Recording the response verbatim (every Coeff record plus the I/O
// count) is what makes the byte-identity comparison exact.
func crowdSession(addr string, frames []crowdFrame, starts []chan struct{}, steps []*sync.WaitGroup) ([]proto.Response, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	r, w := proto.NewReader(conn), proto.NewWriter(conn)
	if tag, err := r.ReadTag(); err != nil || tag != proto.TagHello {
		return nil, fmt.Errorf("handshake tag %d err %v", tag, err)
	}
	if _, err := r.ReadHello(); err != nil {
		return nil, err
	}

	planner := retrieval.NewClient(nil, nil)
	out := make([]proto.Response, len(frames))
	for i, f := range frames {
		if starts != nil {
			<-starts[i]
		}
		subs := planner.PlanFrame(f.q, f.speed)
		if err := w.WriteRequest(proto.Request{Speed: f.speed, Subs: subs}); err != nil {
			return nil, err
		}
		tag, err := r.ReadTag()
		if err != nil {
			return nil, err
		}
		if tag != proto.TagResponse {
			if tag == proto.TagError {
				msg, _ := r.ReadError()
				return nil, fmt.Errorf("server error: %s", msg)
			}
			return nil, fmt.Errorf("unexpected tag %d", tag)
		}
		if out[i], err = r.ReadResponse(); err != nil {
			return nil, err
		}
		planner.Advance(f.q, f.speed)
		if steps != nil {
			steps[i].Done()
		}
	}
	w.WriteBye()
	return out, nil
}

// crowdServer builds one wire server over a freshly (and identically)
// generated dataset and serves it on a loopback listener.
func crowdServer(spec CrowdRunSpec, st *stats.Stats, coalesced bool) (*engine.Scene, *proto.Server, net.Listener, func(), error) {
	d := workload.Generate(workload.Spec{NumObjects: spec.Objects, Levels: spec.Levels, Seed: spec.Seed + 5})
	reg := engine.NewRegistry()
	cfg := engine.SceneConfig{Name: crowdScene, Dataset: d, Levels: spec.Levels, Shards: spec.Shards, Stats: st}
	if coalesced {
		cfg.HotCache = &hotcache.Config{}
	}
	sc, err := reg.Build(cfg)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if coalesced {
		// A long linger window: near-simultaneous flock arrivals that just
		// miss a flight still share its result within the step.
		reg.EnableCoalescer(retrieval.CoalescerConfig{Window: 50 * time.Millisecond}, st)
	}
	srv := proto.NewMultiServer(reg, nil)
	srv.SetStats(st)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(lis) }()
	stop := func() { srv.Close(); <-done }
	return sc, srv, lis, stop, nil
}

// RunCrowd runs the crowd-serving acceptance soak and prints a summary.
// The acceptance claims, each enforced as an error:
//
//   - coalesced serving is invisible: every frame of every client —
//     including frames after a forced mid-soak index mutation — matches
//     the independent server's frame exactly, every coefficient record
//     and the reported index I/O included;
//   - sharing actually happened: at least one session adopted another
//     session's index pass (Shared > 0), and at least one hot-region
//     refresh fanned out through the subscription layer;
//   - the multicast path engaged: cached serialized payloads were
//     replayed instead of re-encoded (PayloadHits > 0);
//   - the coalescer's counters reconcile exactly:
//     Routed == Led + Shared + BypassCollision + BypassStale;
//   - subscriptions drain: after the last session closes, the
//     subscriber gauge returns to zero.
func RunCrowd(spec CrowdRunSpec, w io.Writer) error {
	spec = spec.fill()
	bumpAt := spec.Steps / 2
	if bumpAt < 1 || spec.Steps < 4 {
		return fmt.Errorf("experiment: %d steps too short for a mid-soak epoch bump", spec.Steps)
	}

	stCo, stInd := stats.New(), stats.New()
	scCo, _, lisCo, stopCo, err := crowdServer(spec, stCo, true)
	if err != nil {
		return err
	}
	defer stopCo()
	scInd, _, lisInd, stopInd, err := crowdServer(spec, stInd, false)
	if err != nil {
		return err
	}
	defer stopInd()
	if scCo.Server.Coalescer() == nil || scCo.Server.HotCache() == nil {
		return fmt.Errorf("experiment: coalesced server came up without coalescer or hot cache")
	}

	// The crowd: flocked clients share attractor paths float-for-float,
	// so their per-step windows coincide — the case coalescing exploits.
	space := scCo.Dataset.Store.Bounds().XY()
	crowd := workload.GenerateCrowd(workload.CrowdSpec{
		Space:      space,
		Clients:    spec.Clients,
		Steps:      spec.Steps,
		Attractors: spec.Attractors,
		Overlap:    spec.Overlap,
		Seed:       spec.Seed,
	})
	side := scCo.Dataset.QuerySide(0.10)
	frames := make([][]crowdFrame, spec.Clients)
	for i, tour := range crowd {
		frames[i] = make([]crowdFrame, spec.Steps)
		for s, pos := range tour.Pos {
			frames[i][s] = crowdFrame{q: geom.RectAround(pos, side), speed: tour.SpeedAt(s)}
		}
	}

	// The forced mutation: delete and reinsert one coefficient. Content
	// is unchanged but the R*-tree may reshape and the epoch advances, so
	// it must be applied to BOTH indexes at the SAME step boundary — the
	// identical op sequence keeps the two trees (and their I/O counts)
	// identical, while cached entries and in-flight coalescing on the
	// coalesced side are forced through the stale-epoch path.
	bump := func(sc *engine.Scene) error {
		mut, ok := sc.Index.(index.Mutable)
		if !ok {
			return fmt.Errorf("experiment: scene index is not mutable")
		}
		mut.Delete(0)
		mut.Insert(0)
		return nil
	}

	start := time.Now()

	// Independent baseline: the same crowd under the same lockstep
	// barriers, served without sharing, with the bump at the same
	// boundary. Between barriers the index is read-only, so the
	// concurrent replay is as deterministic as a serial one.
	indDone := make([]*sync.WaitGroup, spec.Steps)
	indStarts := make([]chan struct{}, spec.Steps)
	for s := range indStarts {
		indStarts[s] = make(chan struct{})
		indDone[s] = &sync.WaitGroup{}
		indDone[s].Add(spec.Clients)
	}
	indResp := make([][]proto.Response, spec.Clients)
	indErr := make([]error, spec.Clients)
	var wgInd sync.WaitGroup
	for i := 0; i < spec.Clients; i++ {
		wgInd.Add(1)
		go func(i int) {
			defer wgInd.Done()
			indResp[i], indErr[i] = crowdSession(lisInd.Addr().String(), frames[i], indStarts, indDone)
		}(i)
	}
	for s := 0; s < spec.Steps; s++ {
		if s == bumpAt {
			if err := bump(scInd); err != nil {
				return err
			}
		}
		close(indStarts[s])
		indDone[s].Wait()
	}
	wgInd.Wait()
	for i, err := range indErr {
		if err != nil {
			return fmt.Errorf("independent client %d: %w", i, err)
		}
	}

	// Coalesced run: same lockstep barriers; within a step every client
	// fires concurrently, which is what gives the coalescer followers.
	coStarts := make([]chan struct{}, spec.Steps)
	coDone := make([]*sync.WaitGroup, spec.Steps)
	for s := range coStarts {
		coStarts[s] = make(chan struct{})
		coDone[s] = &sync.WaitGroup{}
		coDone[s].Add(spec.Clients)
	}
	coResp := make([][]proto.Response, spec.Clients)
	coErr := make([]error, spec.Clients)
	var wgCo sync.WaitGroup
	for i := 0; i < spec.Clients; i++ {
		wgCo.Add(1)
		go func(i int) {
			defer wgCo.Done()
			coResp[i], coErr[i] = crowdSession(lisCo.Addr().String(), frames[i], coStarts, coDone)
		}(i)
	}
	for s := 0; s < spec.Steps; s++ {
		if s == bumpAt {
			if err := bump(scCo); err != nil {
				return err
			}
		}
		close(coStarts[s])
		coDone[s].Wait()
	}
	wgCo.Wait()
	for i, err := range coErr {
		if err != nil {
			return fmt.Errorf("coalesced client %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)

	// Byte-identity: every client, every frame, every record.
	diverged := 0
	for i := 0; i < spec.Clients; i++ {
		for s := 0; s < spec.Steps; s++ {
			a, b := coResp[i][s], indResp[i][s]
			if len(a.Coeffs) != len(b.Coeffs) || a.IO != b.IO || a.Dropped != b.Dropped {
				diverged++
				continue
			}
			for k := range a.Coeffs {
				if a.Coeffs[k] != b.Coeffs[k] {
					diverged++
					break
				}
			}
		}
	}

	// Sessions close via Bye but the server goroutines race the soak
	// body; wait for both gauges to drain before reading counters.
	deadline := time.Now().Add(5 * time.Second)
	for stCo.ActiveSessions() != 0 || stInd.ActiveSessions() != 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("experiment: sessions never drained (%d coalesced, %d independent active)",
				stCo.ActiveSessions(), stInd.ActiveSessions())
		}
		time.Sleep(time.Millisecond)
	}

	co, ind := stCo.Snapshot(), stInd.Snapshot()
	cs := co.Coalesce
	passes := cs.Led + cs.BypassCollision + cs.BypassStale
	fmt.Fprintf(w, "crowd: %s, %d objects per scene, mid-soak epoch bump at step %d\n",
		workload.CrowdSpec{Clients: spec.Clients, Steps: spec.Steps, Attractors: spec.Attractors, Overlap: spec.Overlap, Seed: spec.Seed},
		spec.Objects, bumpAt)
	fmt.Fprintf(w, "  coalescer: %d routed = %d led + %d shared + %d collision + %d stale -> %d index passes (independent: %d)\n",
		cs.Routed, cs.Led, cs.Shared, cs.BypassCollision, cs.BypassStale, passes, ind.SubQueries)
	fmt.Fprintf(w, "  hot regions: %d hits · %d sub refreshes · %d payload replays · %v elapsed\n",
		co.Hot.Hits, co.Hot.SubRefreshes, co.Hot.PayloadHits, elapsed.Round(time.Millisecond))

	if diverged > 0 {
		return fmt.Errorf("experiment: %d of %d frames diverged from the independent server",
			diverged, spec.Clients*spec.Steps)
	}
	fmt.Fprintf(w, "  identity OK: all %d frames byte-identical to independent serving, across the epoch bump\n",
		spec.Clients*spec.Steps)

	wantReq := int64(spec.Clients * spec.Steps)
	if co.Requests != wantReq || ind.Requests != wantReq {
		return fmt.Errorf("experiment: requests %d coalesced / %d independent, want %d each",
			co.Requests, ind.Requests, wantReq)
	}
	if got := cs.Led + cs.Shared + cs.BypassCollision + cs.BypassStale; got != cs.Routed {
		return fmt.Errorf("experiment: coalescer counters do not reconcile: %d routed vs %d accounted",
			cs.Routed, got)
	}
	if cs.Routed == 0 {
		return fmt.Errorf("experiment: nothing was routed through the coalescer")
	}
	// Cross-layer reconciliation: both servers planned identical
	// sub-queries, and on the coalesced side every one of them was
	// either a hot-cache hit or routed through the coalescer — exactly.
	if co.SubQueries != ind.SubQueries {
		return fmt.Errorf("experiment: sub-query plans diverged: %d coalesced vs %d independent",
			co.SubQueries, ind.SubQueries)
	}
	if cs.Routed+co.Hot.Hits != co.SubQueries {
		return fmt.Errorf("experiment: %d routed + %d hot hits != %d sub-queries",
			cs.Routed, co.Hot.Hits, co.SubQueries)
	}
	// The sharing gates only apply to a crowd that actually flocks; a
	// zero-overlap soak is a pure no-regression identity check. The
	// pass-reduction gate is deterministic: per flock per step exactly
	// one member leads the index pass — every other member adopts the
	// flight or hits the hot cache, whichever it races into.
	if spec.Overlap > 0 {
		if passes >= ind.SubQueries {
			return fmt.Errorf("experiment: coalesced serving spent %d index passes, independent %d — nothing shared",
				passes, ind.SubQueries)
		}
		if co.Hot.SubRefreshes == 0 {
			return fmt.Errorf("experiment: no hot-region refresh fanned out through a subscription")
		}
		if co.Hot.PayloadHits == 0 {
			return fmt.Errorf("experiment: the multicast payload path never replayed a cached payload")
		}
	}
	if co.Hot.Subscribers != 0 {
		return fmt.Errorf("experiment: %d subscriptions leaked past session close", co.Hot.Subscribers)
	}
	if co.Errors != 0 || ind.Errors != 0 {
		return fmt.Errorf("experiment: servers recorded %d+%d errors", co.Errors, ind.Errors)
	}
	fmt.Fprintf(w, "  acceptance OK: counters reconcile exactly, sharing and multicast engaged, subscriptions drained\n")
	return nil
}
