package proto

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/hotcache"
	"repro/internal/index"
	"repro/internal/retrieval"
	"repro/internal/stats"
	"repro/internal/wavelet"
)

// Server serves the retrieval protocol over TCP (or any net.Listener).
// Each connection is one client session with its own delivered-set
// filtering, exactly like the in-process retrieval.Session.
//
// Scenes: the server fronts an engine.Registry. A connection lands on
// the default scene (announced in the hello) and may switch once to any
// registered scene with a scene-select frame — but only before its first
// request or resume, so a session's delivered-set never spans scenes.
// Each scene parks its interrupted sessions in its own resume cache; a
// resuming client re-selects its scene first, then presents its token.
//
// Concurrency: every accepted connection runs on its own goroutine. The
// per-connection state (reader, writer, session) is goroutine-local;
// the shared retrieval servers, sources, and indexes are
// concurrent-read-safe (see the index.Index contract), the stats
// collector is wait-free, and the resume caches are mutex-guarded off
// the request hot path.
//
// Lifecycle hardening (see DESIGN.md "Fault tolerance"): per-connection
// idle and frame deadlines bound how long a silent or trickling peer can
// pin a goroutine, a max-sessions limit sheds excess connections with a
// sanitized "server busy" error, and Close drains in-flight handlers for
// a bounded interval before force-closing stragglers.
type Server struct {
	reg  *engine.Registry
	logf func(format string, args ...any)
	st   *stats.Stats

	maxSessions  int           // 0 = unlimited
	idleTimeout  time.Duration // max silence between frames; 0 = none
	frameTimeout time.Duration // per-frame read/write deadline; 0 = none
	drainTimeout time.Duration // graceful-close bound
	budgetCap    int64         // ceiling on budgeted-response sizes; 0 = none

	mu     sync.Mutex
	closed bool
	lis    net.Listener
	conns  map[net.Conn]*connInfo
	wg     sync.WaitGroup
}

// connInfo is the server's bookkeeping for one live connection: the
// scene the session is currently bound to, so a cluster drain can sever
// exactly the connections of the scene being relocated, and whether the
// session has started (served a request or resume) — only those carry
// state worth parking when severed.
type connInfo struct {
	scene   string
	started bool
}

// defaultDrainTimeout bounds graceful Close; override with
// SetDrainTimeout.
const defaultDrainTimeout = 5 * time.Second

// DefaultSceneName is the name NewServer registers its single scene
// under; clients that never send a scene-select get it implicitly.
const DefaultSceneName = "default"

// NewServer wraps a single retrieval server for network access — the
// pre-registry constructor, kept as the one-scene special case: the
// scene is registered under DefaultSceneName. levels is the dataset's
// subdivision depth, announced in the hello. logf may be nil.
// Session and error counts are recorded into stats.Default; SetStats
// overrides.
func NewServer(srv *retrieval.Server, levels int, logf func(string, ...any)) *Server {
	reg := engine.NewRegistry()
	if _, err := reg.AddScene(DefaultSceneName, srv, levels); err != nil {
		panic(err) // DefaultSceneName is statically valid
	}
	return NewMultiServer(reg, logf)
}

// NewMultiServer serves every scene in the registry. The registry must
// hold at least one scene before Serve (the default scene greets new
// connections).
func NewMultiServer(reg *engine.Registry, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{
		reg:          reg,
		logf:         logf,
		st:           stats.Default,
		drainTimeout: defaultDrainTimeout,
		conns:        make(map[net.Conn]*connInfo),
	}
}

// Registry returns the scene registry this server fronts.
func (s *Server) Registry() *engine.Registry { return s.reg }

// SetStats redirects the server's session/error counters (nil disables
// recording). Call before Serve.
func (s *Server) SetStats(st *stats.Stats) { s.st = st }

// SetLimits configures resource bounds: maxSessions concurrent
// connections (0 = unlimited; excess connections are shed with a
// "server busy" error), idle is the maximum silence between frames, and
// frame bounds each frame's body read and response write (0 disables
// either deadline). Call before Serve.
func (s *Server) SetLimits(maxSessions int, idle, frame time.Duration) {
	s.maxSessions = maxSessions
	s.idleTimeout = idle
	s.frameTimeout = frame
}

// SetBudgetCap ceilings the effective byte budget of budgeted requests:
// a client budget above the cap (or an "unlimited" budget of 0) is
// clamped down to it, bounding the response a single budgeted frame can
// demand. Plain (version-3) requests are never capped — their responses
// must stay byte-identical to an uncapped server, which is what the
// oracle-equality harnesses pin. 0 disables the cap. Call before Serve.
func (s *Server) SetBudgetCap(maxBytes int64) {
	if maxBytes < 0 {
		maxBytes = 0
	}
	s.budgetCap = maxBytes
}

// SetResumeCache bounds every scene's closed-session cache: capacity
// entries (0 disables resumption) kept for at most ttl. Call before
// Serve.
func (s *Server) SetResumeCache(capacity int, ttl time.Duration) {
	s.reg.SetResumeCache(capacity, ttl)
}

// SetDrainTimeout bounds how long Close waits for in-flight handlers
// before force-closing their connections. Call before Serve.
func (s *Server) SetDrainTimeout(d time.Duration) { s.drainTimeout = d }

// Serve accepts connections until the listener closes. It returns nil
// after Close.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		if s.maxSessions > 0 && len(s.conns) >= s.maxSessions {
			s.mu.Unlock()
			go s.shed(conn)
			continue
		}
		s.conns[conn] = &connInfo{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// shed refuses a connection over the session limit with a bounded-time,
// sanitized error so well-behaved clients can back off and retry.
func (s *Server) shed(conn net.Conn) {
	defer conn.Close()
	s.st.RecordShed()
	s.logf("proto: shedding %v at session limit %d", conn.RemoteAddr(), s.maxSessions)
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	NewWriter(conn).WriteError("server busy: session limit reached")
}

// Close stops the accept loop, wakes idle handlers, waits up to the
// drain timeout for in-flight frames to finish, then force-closes any
// stragglers. It is safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.lis != nil {
		s.lis.Close()
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	// Waking blocked readers lets idle handlers exit immediately while a
	// handler mid-frame still finishes its write.
	now := time.Now()
	for _, c := range conns {
		c.SetReadDeadline(now)
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return
	case <-time.After(s.drainTimeout):
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-done
}

// setConnScene records which scene a connection is bound to (for
// SeverScene/SceneConns). A connection already gone from the map (Close
// racing the handler) is ignored.
func (s *Server) setConnScene(conn net.Conn, scene string) {
	s.mu.Lock()
	if ci, ok := s.conns[conn]; ok {
		ci.scene = scene
	}
	s.mu.Unlock()
}

// setConnStarted marks a connection's session as started once it serves
// its first request or resume.
func (s *Server) setConnStarted(conn net.Conn) {
	s.mu.Lock()
	if ci, ok := s.conns[conn]; ok {
		ci.started = true
	}
	s.mu.Unlock()
}

// SceneConns reports how many live connections are bound to the named
// scene.
func (s *Server) SceneConns(scene string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ci := range s.conns {
		if ci.scene == scene {
			n++
		}
	}
	return n
}

// SeverScene force-closes every connection bound to the named scene and
// returns how many live sessions it severed. Each severed handler parks
// its session in the scene's resume cache (journaled when one is
// attached) exactly as it would for a vanished peer — the drain hook a
// cluster controller uses to quiesce a scene before shipping it to
// another backend. Connections whose session never started (a
// handshake-only peer caught mid-greeting) are closed too but not
// counted: they park nothing, so the count matches what the resume
// cache gains.
func (s *Server) SeverScene(scene string) int {
	s.mu.Lock()
	victims := make([]net.Conn, 0, len(s.conns))
	n := 0
	for c, ci := range s.conns {
		if ci.scene == scene {
			victims = append(victims, c)
			if ci.started {
				n++
			}
		}
	}
	s.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
	return n
}

// sendHello announces a scene's schema under the connection's token.
func (s *Server) sendHello(conn net.Conn, w *Writer, scene *engine.Scene, token uint64) error {
	src := scene.Source
	s.setWriteDeadline(conn)
	return w.WriteHello(Hello{
		Version:   Version,
		Objects:   int32(src.NumObjects()),
		Levels:    int32(scene.Levels),
		BaseVerts: int32(src.BaseVerts()),
		Space:     src.Bounds().XY(),
		Token:     token,
		Scene:     scene.Name,
	})
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	s.st.SessionOpened()
	defer s.st.SessionClosed()
	w := NewWriter(conn)
	r := NewReader(conn)

	scene := s.reg.Default()
	if scene == nil {
		s.setWriteDeadline(conn)
		if err := w.WriteError("no scenes registered"); err != nil {
			s.logf("proto: error reply to %v failed: %v", conn.RemoteAddr(), err)
		}
		return
	}
	s.setConnScene(conn, scene.Name)
	token := newToken()
	if err := s.sendHello(conn, w, scene, token); err != nil {
		s.st.RecordError()
		s.logf("proto: hello to %v failed: %v", conn.RemoteAddr(), err)
		return
	}

	// The session lineage this connection serves. A successful resume
	// swaps in a cached predecessor; on abnormal exit the lineage is
	// parked in the *current* scene's cache under this connection's token
	// (the client always resumes with the newest token it completed a
	// handshake for, after re-selecting the same scene).
	sess := &engine.ResumeEntry{Session: retrieval.NewSession(scene.Server)}
	started := false // a request or resume has bound the session to its scene
	orderly := false
	// Per-connection wire scratch: response payloads are serialized into
	// this buffer (reused every frame) unless the scene's hot cache
	// already holds the encoded bytes.
	var payloadBuf []byte
	// Against a paging store (index.PinningSource), the payload encode
	// loop reads coefficients across many pages; a per-connection pin
	// set keeps them resident (and their pointers stable) until the
	// frame's bytes are in payloadBuf. nil for in-memory scenes.
	pinner, _ := scene.Source.(index.PinningSource)
	var pins *index.Pins
	// hotSub is this session's hot-region subscription (nil until the
	// session first serves a frame provably equal to a cache entry). It
	// follows the viewer: each hot frame re-points it at that frame's
	// bucket, keeping the region's entry — and its shared serialized
	// payload — exempt from LRU eviction while anyone watches it.
	var hotSub *hotcache.Sub
	defer func() {
		if hotSub != nil {
			hotSub.Close()
		}
	}()
	defer func() {
		// Park only sessions that actually started: an interrupted
		// connection that never served a request or resume has no
		// delivered-set worth restoring, and parking it would let
		// transient handshake-only peers (health probes, port scanners)
		// pollute the resume cache and session journal.
		if !orderly && started {
			scene.Resume.Put(token, sess)
		}
	}()

	for {
		if s.idleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		tag, err := r.ReadTag()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.st.RecordError()
				s.logf("proto: read from %v failed: %v", conn.RemoteAddr(), err)
			}
			return
		}
		// The frame deadline bounds the body read and the reply write; the
		// next loop iteration resets it to the (longer) idle timeout.
		if s.frameTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.frameTimeout))
		}
		switch tag {
		case TagScene:
			name, err := r.ReadSceneSelect()
			if err != nil {
				s.st.RecordError()
				s.logf("proto: bad scene select from %v: %v", conn.RemoteAddr(), err)
				s.setWriteDeadline(conn)
				if werr := w.WriteError(SanitizeWireError(err)); werr != nil {
					s.logf("proto: error reply to %v failed: %v", conn.RemoteAddr(), werr)
				}
				return
			}
			if started {
				// Switching scenes would graft one scene's delivered-set onto
				// another's id space; refuse and drop the connection.
				s.st.RecordError()
				s.logf("proto: %v selected scene %q after session start", conn.RemoteAddr(), name)
				s.setWriteDeadline(conn)
				if werr := w.WriteError("scene select after session start"); werr != nil {
					s.logf("proto: error reply to %v failed: %v", conn.RemoteAddr(), werr)
				}
				return
			}
			next, ok := s.reg.Get(name)
			if !ok {
				s.st.RecordError()
				s.setWriteDeadline(conn)
				if werr := w.WriteError("unknown scene: " + name); werr != nil {
					s.logf("proto: error reply to %v failed: %v", conn.RemoteAddr(), werr)
				}
				return
			}
			scene = next
			s.setConnScene(conn, scene.Name)
			pinner, _ = scene.Source.(index.PinningSource)
			pins = nil // a pin set is bound to one store
			if hotSub != nil {
				// A subscription is bound to one scene's cache.
				hotSub.Close()
				hotSub = nil
			}
			sess = &engine.ResumeEntry{Session: retrieval.NewSession(scene.Server)}
			if err := s.sendHello(conn, w, scene, token); err != nil {
				s.st.RecordError()
				s.logf("proto: hello to %v failed: %v", conn.RemoteAddr(), err)
				return
			}
		case TagResume:
			res, err := r.ReadResume()
			if err != nil {
				s.st.RecordError()
				s.logf("proto: bad resume from %v: %v", conn.RemoteAddr(), err)
				return
			}
			s.setWriteDeadline(conn)
			prev, ok := scene.Resume.Take(res.Token)
			if ok {
				// Roll back an un-applied final response: the server counted
				// those coefficients as delivered, but the client never saw
				// them; forgetting them lets the retry re-send.
				switch res.AppliedSeq {
				case prev.Seq:
					// In sync; nothing to roll back.
				case prev.Seq - 1:
					prev.Session.Forget(prev.LastIDs)
					prev.Seq--
				default:
					ok = false
				}
			}
			if !ok {
				s.st.RecordResume(false)
				if err := w.WriteResumeFail("no resumable session"); err != nil {
					s.logf("proto: resume reply to %v failed: %v", conn.RemoteAddr(), err)
					return
				}
				continue
			}
			prev.LastIDs = prev.LastIDs[:0]
			sess = prev
			if !started {
				started = true
				s.setConnStarted(conn)
			}
			s.st.RecordResume(true)
			if prev.Restored {
				// This session crossed a server restart via the recovered
				// journal — the crash-safety win worth its own counter.
				s.st.RecordResumeRestored()
				prev.Restored = false
			}
			if err := w.WriteResumeOK(ResumeOK{Seq: sess.Seq, Delivered: int64(sess.Session.Delivered())}); err != nil {
				s.logf("proto: resume reply to %v failed: %v", conn.RemoteAddr(), err)
				return
			}
		case TagRequest, TagBudgetRequest:
			var req Request
			var err error
			if tag == TagRequest {
				req, err = r.ReadRequest()
			} else {
				req, err = r.ReadBudgetRequest()
			}
			if err != nil {
				s.st.RecordError()
				s.logf("proto: bad request from %v: %v", conn.RemoteAddr(), err)
				s.setWriteDeadline(conn)
				if werr := w.WriteError(SanitizeWireError(err)); werr != nil {
					s.logf("proto: error reply to %v failed: %v", conn.RemoteAddr(), werr)
				}
				return
			}
			if !started {
				started = true
				s.setConnStarted(conn)
			}
			var resp retrieval.Response
			var maxBytes int64
			if tag == TagBudgetRequest {
				// The server-side cap clamps over-large (and "unlimited")
				// client budgets; the truncation itself is the deterministic
				// prefix cut of retrieval.ExecuteBudget.
				maxBytes = req.MaxBytes
				if s.budgetCap > 0 && (maxBytes == 0 || maxBytes > s.budgetCap) {
					maxBytes = s.budgetCap
				}
				resp = sess.Session.RetrieveBudget(req.Subs, maxBytes)
			} else {
				resp = sess.Session.RetrieveScratch(req.Subs)
			}
			sess.Seq++
			hot := scene.Server.HotCache()
			var payload []byte
			if hot != nil && resp.Hot.Valid {
				// Multicast registration: this session is watching the hot
				// region it just retrieved; keep the region's entry resident
				// until the session moves on or disconnects.
				if hotSub == nil {
					hotSub = hot.Subscribe()
				}
				hotSub.Set(resp.Hot.Query)
				if p, ok := hot.Payload(resp.Hot.Query, resp.Hot.Epoch); ok && len(p) == len(resp.IDs)*wireCoeffBytes {
					payload = p
				}
			} else if hot != nil && tag == TagBudgetRequest {
				// A budgeted frame that cannot carry a HotRef — the budget
				// truncated it (or the merge dropped something) — pays the
				// full encode pass even with a hot cache wired.
				s.st.RecordHotBypassBudget()
			}
			if payload == nil {
				payloadBuf = payloadBuf[:0]
				if pinner != nil && pins == nil && len(resp.IDs) > 0 {
					pins = pinner.NewPins()
				}
				// Coefficients whose backing page is unreadable at encode
				// time are withheld: compacted out of the response and
				// forgotten from the delivered set, so the session
				// re-retrieves them once the page heals (ABR Dropped
				// semantics — degrade the frame, never the process).
				var withheldIDs []int64
				kept := resp.IDs[:0]
				for _, id := range resp.IDs {
					var c *wavelet.Coefficient
					var cerr error
					if pins != nil {
						c, cerr = pins.Coeff(id)
					} else {
						c, cerr = scene.Source.Coeff(id)
					}
					if cerr != nil {
						withheldIDs = append(withheldIDs, id)
						continue
					}
					wc := Coeff{
						Object: c.Object,
						Vertex: c.Vertex,
						Delta:  c.Delta,
						Pos:    [3]float32{float32(c.Pos.X), float32(c.Pos.Y), float32(c.Pos.Z)},
						Value:  float32(c.Value),
					}
					payloadBuf = appendCoeff(payloadBuf, &wc)
					kept = append(kept, id)
				}
				if pins != nil {
					// The frame's bytes are in payloadBuf; the pages can go.
					pins.Release()
				}
				resp.IDs = kept
				if len(withheldIDs) > 0 {
					sess.Session.Forget(withheldIDs)
					resp.Dropped += int64(len(withheldIDs))
					s.st.RecordWithheld(int64(len(withheldIDs)))
				}
				payload = payloadBuf
				if hot != nil && resp.Hot.Valid && len(withheldIDs) == 0 {
					hot.SetPayload(resp.Hot.Query, resp.Hot.Epoch, payload)
				}
			}
			// resp.IDs aliases the session's scratch (overwritten by the
			// next frame); the resume lineage keeps its own copy — taken
			// after the encode pass so it records what was actually sent.
			sess.LastIDs = append(sess.LastIDs[:0], resp.IDs...)
			s.setWriteDeadline(conn)
			if tag == TagBudgetRequest {
				err = w.WriteBudgetResponsePayload(len(resp.IDs), resp.IO, sess.Seq, resp.Dropped, maxBytes, payload)
			} else {
				err = w.WriteResponsePayload(len(resp.IDs), resp.IO, sess.Seq, payload)
			}
			if err != nil {
				s.st.RecordError()
				s.logf("proto: response to %v failed: %v", conn.RemoteAddr(), err)
				return
			}
		case TagBye:
			orderly = true
			return
		default:
			s.st.RecordError()
			s.logf("proto: unexpected tag %d from %v", tag, conn.RemoteAddr())
			s.setWriteDeadline(conn)
			if werr := w.WriteError("unexpected message"); werr != nil {
				s.logf("proto: error reply to %v failed: %v", conn.RemoteAddr(), werr)
			}
			return
		}
	}
}

func (s *Server) setWriteDeadline(conn net.Conn) {
	if s.frameTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.frameTimeout))
	}
}

// ResumeCacheLen reports the number of parked sessions across all scenes
// (observability and tests).
func (s *Server) ResumeCacheLen() int { return s.reg.ResumeLen() }

// ListenAndServe binds addr and serves until Close. It logs the bound
// address through logf (useful with ":0").
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.logf("proto: listening on %v", lis.Addr())
	return s.Serve(lis)
}
