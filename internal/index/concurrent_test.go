package index

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// randomQueries builds a reproducible batch of window queries spanning
// degenerate, tiny, and space-covering windows with varied value bands.
func randomQueries(seed int64, n int) []Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]Query, n)
	for i := range qs {
		x, y := rng.Float64()*900, rng.Float64()*900
		w, h := rng.Float64()*300, rng.Float64()*300
		wmin := rng.Float64()
		wmax := wmin + rng.Float64()*(1-wmin)
		qs[i] = Query{
			Region: geom.R2(x, y, x+w, y+h),
			ZMin:   0, ZMax: rng.Float64() * 120,
			WMin: wmin, WMax: wmax,
		}
	}
	return qs
}

func sortedIDs(ids []int64) []int64 {
	out := append([]int64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func idsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConcurrentSearchEqualsSerial is the read-path property test: for
// random coefficient sets and random query batches, every access method
// must return, under heavy goroutine concurrency, exactly the results
// (and I/O counts) of a single-threaded execution — Search holds no
// hidden mutable state. The subtests run with t.Parallel() so the index
// builds and cross-index searches interleave, and the whole test is part
// of the -race gate.
func TestConcurrentSearchEqualsSerial(t *testing.T) {
	for _, seed := range []int64{21, 22} {
		seed := seed
		s := testStore(t, 8, seed)
		indexes := []Index{
			NewMotionAware(s, XYW, rtree.Config{}),
			NewMotionAware(s, XYZW, rtree.Config{}),
			NewNaive(s, XYW, rtree.Config{}),
			NewObjectIndex(s, rtree.Config{}),
		}
		queries := randomQueries(seed*100, 40)
		for _, idx := range indexes {
			idx := idx
			t.Run(fmt.Sprintf("seed%d/%s", seed, idx.Name()), func(t *testing.T) {
				t.Parallel()
				// Single-threaded baseline, computed once up front.
				wantIDs := make([][]int64, len(queries))
				wantIO := make([]int64, len(queries))
				for i, q := range queries {
					ids, io := idx.Search(q)
					wantIDs[i] = sortedIDs(ids)
					wantIO[i] = io
				}
				// The motion-aware baseline must itself match brute force.
				if ma, ok := idx.(*MotionAware); ok {
					for i, q := range queries {
						ref := referenceMotionAware(s, ma.layout, q)
						if len(ref) != len(wantIDs[i]) {
							t.Fatalf("query %d: baseline %d ids, brute force %d",
								i, len(wantIDs[i]), len(ref))
						}
						for _, id := range wantIDs[i] {
							if !ref[id] {
								t.Fatalf("query %d: id %d not in brute force set", i, id)
							}
						}
					}
				}

				const goroutines = 8
				var wg sync.WaitGroup
				errs := make(chan error, goroutines)
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						// Each goroutine walks the batch from a different
						// offset so distinct queries overlap in time.
						for k := range queries {
							i := (k + g*len(queries)/goroutines) % len(queries)
							ids, io := idx.Search(queries[i])
							if got := sortedIDs(ids); !idsEqual(got, wantIDs[i]) {
								errs <- fmt.Errorf("goroutine %d query %d: %d ids, serial %d",
									g, i, len(got), len(wantIDs[i]))
								return
							}
							if io != wantIO[i] {
								errs <- fmt.Errorf("goroutine %d query %d: io %d, serial %d",
									g, i, io, wantIO[i])
								return
							}
						}
					}(g)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Error(err)
				}
			})
		}
	}
}

// TestMotionAwareInsertDelete checks the new mutation ops single-threaded:
// delete removes exactly the coefficient, insert restores it, and
// searches stay consistent with brute force throughout.
func TestMotionAwareInsertDelete(t *testing.T) {
	s := testStore(t, 4, 31)
	ma := NewMotionAware(s, XYW, rtree.Config{})
	total := ma.Len()
	all := Query{Region: geom.R2(0, 0, 1000, 1000), WMin: 0, WMax: 1}

	victim := s.ID(1, 7)
	if !ma.Delete(victim) {
		t.Fatal("delete of an indexed coefficient failed")
	}
	if ma.Delete(victim) {
		t.Fatal("double delete succeeded")
	}
	if ma.Len() != total-1 {
		t.Fatalf("len = %d after delete", ma.Len())
	}
	ids, _ := ma.Search(all)
	for _, id := range ids {
		if id == victim {
			t.Fatal("deleted coefficient still returned")
		}
	}
	if len(ids) != total-1 {
		t.Fatalf("search returned %d of %d", len(ids), total-1)
	}

	ma.Insert(victim)
	if ma.Len() != total {
		t.Fatalf("len = %d after reinsert", ma.Len())
	}
	ids, _ = ma.Search(all)
	found := false
	for _, id := range ids {
		if id == victim {
			found = true
		}
	}
	if !found || len(ids) != total {
		t.Fatalf("reinsert lost the coefficient (%d ids, found=%v)", len(ids), found)
	}
	if err := ma.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentWrapperServesReadersDuringUpdates churns one object's
// coefficients through Delete/Insert on a background writer while reader
// goroutines run full-space searches through the Concurrent wrapper.
// Every read must observe a consistent index: all untouched coefficients
// present exactly once, churned ones present at most once. Run under
// -race this proves the reader/writer locking.
func TestConcurrentWrapperServesReadersDuringUpdates(t *testing.T) {
	s := testStore(t, 6, 32)
	ma := NewMotionAware(s, XYW, rtree.Config{})
	c := NewConcurrent(ma)
	total := c.Len()

	var churn []int64
	for v := range s.Objects[0].Coeffs {
		churn = append(churn, s.ID(0, int32(v)))
	}
	stable := make(map[int64]bool)
	for id := int64(0); id < s.NumCoeffs(); id++ {
		stable[id] = true
	}
	for _, id := range churn {
		delete(stable, id)
	}

	all := Query{Region: geom.R2(0, 0, 1000, 1000), WMin: 0, WMax: 1}
	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, id := range churn {
				c.Delete(id)
			}
			// Batch reinsert under one write lock.
			c.Update(func(idx Index) {
				m := idx.(*MotionAware)
				for _, id := range churn {
					m.Insert(id)
				}
			})
		}
	}()

	const readers = 4
	const reads = 40
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < reads; k++ {
				ids, _ := c.Search(all)
				seen := make(map[int64]bool, len(ids))
				for _, id := range ids {
					if seen[id] {
						errs <- fmt.Errorf("reader %d: duplicate id %d", g, id)
						return
					}
					seen[id] = true
				}
				for id := range stable {
					if !seen[id] {
						errs <- fmt.Errorf("reader %d: stable id %d missing", g, id)
						return
					}
				}
				if n := c.Len(); n < len(stable) || n > total {
					errs <- fmt.Errorf("reader %d: len %d outside [%d, %d]",
						g, n, len(stable), total)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Once the writer finishes, the index is whole again.
	if c.Len() != total {
		t.Fatalf("final len = %d, want %d", c.Len(), total)
	}
	ids, _ := c.Search(all)
	if len(ids) != total {
		t.Fatalf("final search returned %d of %d", len(ids), total)
	}
	if err := ma.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentWrapperBasics covers the wrapper's pass-throughs and the
// non-mutable guard.
func TestConcurrentWrapperBasics(t *testing.T) {
	s := testStore(t, 2, 33)
	ma := NewMotionAware(s, XYW, rtree.Config{})
	c := NewConcurrent(ma)
	if c.Unwrap() != Index(ma) {
		t.Error("Unwrap returned a different index")
	}
	if c.Name() != "concurrent("+ma.Name()+")" {
		t.Errorf("name = %q", c.Name())
	}
	if c.Len() != ma.Len() {
		t.Errorf("len = %d, want %d", c.Len(), ma.Len())
	}
	var _ Index = c   // wrapper satisfies the read interface
	var _ Mutable = c // and the mutable one
	var _ Mutable = ma

	nonMutable := NewConcurrent(NewObjectIndex(s, rtree.Config{}))
	defer func() {
		if recover() == nil {
			t.Error("Insert on a non-mutable index did not panic")
		}
	}()
	nonMutable.Insert(0)
}
