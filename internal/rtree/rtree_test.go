package rtree

import (
	"math/rand"
	"sort"
	"testing"
)

func randRect2D(rng *rand.Rand, space float64) Rect {
	x, y := rng.Float64()*space, rng.Float64()*space
	w, h := rng.Float64()*space/20, rng.Float64()*space/20
	return Box(x, x+w, y, y+h)
}

func buildRandom(t testing.TB, cfg Config, n int, seed int64) (*Tree, []Rect) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := New(cfg)
	rects := make([]Rect, n)
	for i := 0; i < n; i++ {
		var r Rect
		switch cfg.Dims {
		case 2:
			r = randRect2D(rng, 1000)
		case 3:
			x, y, w := rng.Float64()*1000, rng.Float64()*1000, rng.Float64()
			r = Box(x, x+rng.Float64()*20, y, y+rng.Float64()*20, w, w)
		case 4:
			x, y, z, w := rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*100, rng.Float64()
			r = Box(x, x+rng.Float64()*20, y, y+rng.Float64()*20, z, z+rng.Float64()*5, w, w)
		default:
			r = Point(rng.Float64() * 1000)
		}
		rects[i] = r
		tr.Insert(r, int64(i))
	}
	return tr, rects
}

func TestNewRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Dims: 0, MaxEntries: 20},
		{Dims: 5, MaxEntries: 20},
		{Dims: 2, MaxEntries: 3},
		{Dims: 2, MaxEntries: 20, MinEntries: 15},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(3)
	if cfg.MaxEntries != 20 || cfg.PageBytes != 4096 || cfg.Variant != RStar {
		t.Errorf("default config %+v", cfg)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(DefaultConfig(2))
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("len=%d height=%d", tr.Len(), tr.Height())
	}
	if got := tr.Collect(Box(0, 100, 0, 100)); len(got) != 0 {
		t.Errorf("query on empty tree returned %v", got)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestInsertAndExactQuery(t *testing.T) {
	tr := New(DefaultConfig(2))
	tr.Insert(Box(10, 20, 10, 20), 7)
	got := tr.Collect(Box(15, 15, 15, 15))
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("got %v", got)
	}
	if got := tr.Collect(Box(30, 40, 30, 40)); len(got) != 0 {
		t.Fatalf("disjoint query returned %v", got)
	}
	// Touching edge counts (closed rectangles).
	if got := tr.Collect(Box(20, 25, 20, 25)); len(got) != 1 {
		t.Fatalf("edge-touching query returned %v", got)
	}
}

// TestQueryMatchesLinearScan is the central correctness property: for any
// data and any query, the tree must return exactly the items a brute-force
// scan returns.
func TestQueryMatchesLinearScan(t *testing.T) {
	for _, variant := range []Variant{RStar, Quadratic} {
		for _, dims := range []int{2, 3, 4} {
			cfg := DefaultConfig(dims)
			cfg.Variant = variant
			tr, rects := buildRandom(t, cfg, 3000, int64(dims)*17+int64(variant))
			if err := tr.Validate(); err != nil {
				t.Fatalf("%v %dD: %v", variant, dims, err)
			}
			rng := rand.New(rand.NewSource(99))
			for q := 0; q < 100; q++ {
				x0, y0 := rng.Float64()*800, rng.Float64()*800
				x1, y1 := x0+rng.Float64()*300, y0+rng.Float64()*300
				var query Rect
				switch dims {
				case 2:
					query = Box(x0, x1, y0, y1)
				case 3:
					query = Box(x0, x1, y0, y1, 0, rng.Float64())
				case 4:
					query = Box(x0, x1, y0, y1, 0, 100, rng.Float64(), 1)
				}
				want := map[int64]bool{}
				for i := range rects {
					if query.intersects(&rects[i], dims) {
						want[int64(i)] = true
					}
				}
				got := tr.Collect(query)
				if len(got) != len(want) {
					t.Fatalf("%v %dD query %d: got %d want %d", variant, dims, q, len(got), len(want))
				}
				for _, d := range got {
					if !want[d] {
						t.Fatalf("%v %dD query %d: unexpected item %d", variant, dims, q, d)
					}
				}
			}
		}
	}
}

func TestValidAfterManyInserts(t *testing.T) {
	cfg := DefaultConfig(2)
	tr, _ := buildRandom(t, cfg, 10000, 5)
	if tr.Len() != 10000 {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		t.Errorf("height %d suspiciously small for 10k items, fanout 20", tr.Height())
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr, _ := buildRandom(t, DefaultConfig(2), 1000, 3)
	count := 0
	tr.Search(Box(0, 1000, 0, 1000), func(Rect, int64) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestIOStatsAccumulateAndReset(t *testing.T) {
	tr, _ := buildRandom(t, DefaultConfig(2), 5000, 4)
	tr.ResetStats()
	tr.Count(Box(0, 100, 0, 100))
	s := tr.Stats()
	if s.Queries != 1 || s.NodesRead < 1 {
		t.Fatalf("stats after one query: %+v", s)
	}
	io := tr.SearchCounted(Box(0, 100, 0, 100), func(Rect, int64) bool { return true })
	if io < 1 {
		t.Fatalf("counted io = %d", io)
	}
	if got := tr.Stats().NodesRead; got != s.NodesRead+io {
		t.Errorf("cumulative io %d want %d", got, s.NodesRead+io)
	}
	tr.ResetStats()
	if s := tr.Stats(); s.NodesRead != 0 || s.Queries != 0 {
		t.Errorf("reset failed: %+v", s)
	}
}

func TestSelectiveQueryTouchesFewerNodes(t *testing.T) {
	tr, _ := buildRandom(t, DefaultConfig(2), 20000, 6)
	small := tr.SearchCounted(Box(500, 510, 500, 510), func(Rect, int64) bool { return true })
	big := tr.SearchCounted(Box(0, 1000, 0, 1000), func(Rect, int64) bool { return true })
	if small >= big {
		t.Errorf("small query io %d not below full scan io %d", small, big)
	}
	if big < int64(tr.NumNodes()) {
		t.Errorf("full query read %d of %d nodes", big, tr.NumNodes())
	}
}

func TestRStarBeatsQuadraticOnIO(t *testing.T) {
	// The R* split heuristics should produce a tree with fewer node reads
	// for small window queries on clustered data. This is the ablation the
	// paper's choice of R*-tree rests on.
	mk := func(variant Variant) int64 {
		cfg := DefaultConfig(2)
		cfg.Variant = variant
		rng := rand.New(rand.NewSource(77))
		tr := New(cfg)
		// Clustered data: 100 clusters of 200 points.
		for c := 0; c < 100; c++ {
			cx, cy := rng.Float64()*1000, rng.Float64()*1000
			for i := 0; i < 200; i++ {
				x := cx + rng.NormFloat64()*5
				y := cy + rng.NormFloat64()*5
				tr.Insert(Box(x, x+0.5, y, y+0.5), int64(c*200+i))
			}
		}
		var io int64
		qrng := rand.New(rand.NewSource(5))
		for q := 0; q < 200; q++ {
			x, y := qrng.Float64()*1000, qrng.Float64()*1000
			io += tr.SearchCounted(Box(x, x+20, y, y+20), func(Rect, int64) bool { return true })
		}
		return io
	}
	rstar, quad := mk(RStar), mk(Quadratic)
	if rstar >= quad {
		t.Errorf("R* io %d not below quadratic io %d", rstar, quad)
	}
}

func TestDelete(t *testing.T) {
	cfg := DefaultConfig(2)
	tr, rects := buildRandom(t, cfg, 2000, 8)
	// Delete half the items.
	for i := 0; i < 1000; i++ {
		if !tr.Delete(rects[i], int64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("len after deletes = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deleted items are gone; survivors remain.
	for i := 0; i < 2000; i++ {
		found := false
		for _, d := range tr.Collect(rects[i]) {
			if d == int64(i) {
				found = true
			}
		}
		if i < 1000 && found {
			t.Fatalf("item %d still present after delete", i)
		}
		if i >= 1000 && !found {
			t.Fatalf("item %d lost", i)
		}
	}
	// Deleting a missing item reports false.
	if tr.Delete(rects[0], 0) {
		t.Error("double delete succeeded")
	}
}

func TestDeleteAll(t *testing.T) {
	tr, rects := buildRandom(t, DefaultConfig(2), 500, 9)
	for i, r := range rects {
		if !tr.Delete(r, int64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Height() != 1 {
		t.Errorf("height = %d after deleting everything", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tree remains usable.
	tr.Insert(Box(1, 2, 1, 2), 42)
	if got := tr.Collect(Box(0, 3, 0, 3)); len(got) != 1 || got[0] != 42 {
		t.Fatalf("reuse after drain: %v", got)
	}
}

func TestScanVisitsEverything(t *testing.T) {
	tr, _ := buildRandom(t, DefaultConfig(3), 1234, 10)
	seen := map[int64]bool{}
	tr.Scan(func(_ Rect, d int64) bool {
		seen[d] = true
		return true
	})
	if len(seen) != 1234 {
		t.Errorf("scan saw %d items", len(seen))
	}
}

func TestDuplicateRects(t *testing.T) {
	tr := New(DefaultConfig(2))
	r := Box(5, 6, 5, 6)
	for i := 0; i < 100; i++ {
		tr.Insert(r, int64(i))
	}
	got := tr.Collect(r)
	if len(got) != 100 {
		t.Fatalf("got %d duplicates", len(got))
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i, d := range got {
		if d != int64(i) {
			t.Fatalf("missing payload %d", i)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPointData(t *testing.T) {
	// Degenerate rectangles (points) are the naive index's storage format.
	rng := rand.New(rand.NewSource(11))
	tr := New(DefaultConfig(4))
	type pt struct{ x, y, z, w float64 }
	pts := make([]pt, 5000)
	for i := range pts {
		pts[i] = pt{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 10, rng.Float64()}
		tr.Insert(Point(pts[i].x, pts[i].y, pts[i].z, pts[i].w), int64(i))
	}
	q := Box(20, 60, 20, 60, 0, 10, 0.5, 1.0)
	want := 0
	for _, p := range pts {
		if p.x >= 20 && p.x <= 60 && p.y >= 20 && p.y <= 60 && p.w >= 0.5 {
			want++
		}
	}
	if got := tr.Count(q); got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestRectHelpers(t *testing.T) {
	r := Box(0, 10, 0, 5)
	if a := r.area(2); a != 50 {
		t.Errorf("area = %v", a)
	}
	if m := r.margin(2); m != 15 {
		t.Errorf("margin = %v", m)
	}
	s := Box(5, 15, 0, 5)
	if ov := r.overlap(&s, 2); ov != 25 {
		t.Errorf("overlap = %v", ov)
	}
	if e := r.enlargement(&s, 2); e != 25 {
		t.Errorf("enlargement = %v", e)
	}
	u := r.union(&s, 2)
	if u.area(2) != 75 {
		t.Errorf("union area = %v", u.area(2))
	}
	if !u.contains(&r, 2) || !u.contains(&s, 2) {
		t.Error("union should contain operands")
	}
	if r.centerDist(&s, 2) != 25 {
		t.Errorf("centerDist = %v", r.centerDist(&s, 2))
	}
}

func TestBoxPanicsOnInvertedInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Box(5, 1)
}

func TestVariantString(t *testing.T) {
	if RStar.String() == "" || Quadratic.String() == "" || Variant(9).String() == "" {
		t.Error("empty variant strings")
	}
}
