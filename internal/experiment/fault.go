package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"repro/internal/faultnet"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/motion"
	"repro/internal/proto"
	"repro/internal/retrieval"
	"repro/internal/rtree"
	"repro/internal/stats"
	"repro/internal/workload"
)

// FaultSpec configures the fault-injection experiment: a resilient
// client rides a motion tour across a loopback server while faultnet
// drops, corrupts, delays, and throttles the link. The zero value gets
// quick-scale defaults.
type FaultSpec struct {
	Seed    int64
	Objects int // dataset size (default 40)
	Levels  int // subdivision depth (default 3)
	Steps   int // tour length (default 120)
	Shards  int // index shard count (≤ 1 = unsharded MotionAware)

	DropMeanBytes  int64 // mean traffic between connection drops (default 16 KB)
	CorruptBytes   int64 // mean read bytes between bit flips (default 12 KB)
	Latency        time.Duration
	BytesPerSecond int64
}

func (s FaultSpec) fill() FaultSpec {
	if s.Objects == 0 {
		s.Objects = 40
	}
	if s.Levels == 0 {
		s.Levels = 3
	}
	if s.Steps == 0 {
		s.Steps = 120
	}
	return s
}

// RunFault runs the fault-injection experiment and prints a summary: the
// injected fault volume, what the recovery machinery did about it
// (retries, resumes, degraded mode), and whether the client's final
// reconstructions are byte-identical to a fault-free oracle run — the
// end-to-end correctness claim of the fault-tolerance layer. A
// convergence failure is returned as an error.
func RunFault(spec FaultSpec, w io.Writer) error {
	spec = spec.fill()

	d := workload.Generate(workload.Spec{NumObjects: spec.Objects, Levels: spec.Levels, Seed: spec.Seed + 5})
	var idx index.Index = index.NewMotionAware(d.Store, index.XYW, rtree.Config{})
	if spec.Shards > 1 {
		idx = index.NewSharded(d.Store, index.XYW, index.ShardedConfig{Shards: spec.Shards})
	}
	stServer := stats.New()
	srv := proto.NewServer(retrieval.NewServer(d.Store, idx), d.Spec.Levels, nil)
	srv.SetStats(stServer)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(lis) }()
	defer func() { srv.Close(); <-done }()
	addr := lis.Addr().String()

	space := d.Store.Bounds().XY()
	tour := motion.NewTour(motion.Tram, motion.TourSpec{
		Space: space, Steps: spec.Steps, Speed: 0.25,
	}, rand.New(rand.NewSource(spec.Seed)))
	side := d.QuerySide(0.10)

	// Fault-free oracle.
	oracle, err := proto.Dial(addr, nil)
	if err != nil {
		return err
	}
	for i, pos := range tour.Pos {
		if _, err := oracle.Frame(geom.RectAround(pos, side), tour.SpeedAt(i)); err != nil {
			return fmt.Errorf("oracle frame %d: %w", i, err)
		}
	}
	oracle.Close()

	// Faulty run.
	cfg := faultnet.Config{
		Seed:           spec.Seed + 1,
		Latency:        spec.Latency,
		BytesPerSecond: spec.BytesPerSecond,
	}
	if m := spec.DropMeanBytes; m != 0 {
		cfg.DropAfterMin, cfg.DropAfterMax = m/2, 3*m/2
	} else {
		cfg.DropAfterMin, cfg.DropAfterMax = 8_000, 24_000
	}
	if m := spec.CorruptBytes; m != 0 {
		cfg.CorruptAfterMin, cfg.CorruptAfterMax = m/2, 3*m/2
	} else {
		cfg.CorruptAfterMin, cfg.CorruptAfterMax = 6_000, 18_000
	}
	stClient := stats.New()
	dialer := faultnet.NewDialer(addr, cfg)
	dialer.SetStats(stClient)
	rc, err := proto.DialResilient(proto.ResilientConfig{
		Dial:         dialer.Dial,
		FrameTimeout: 10 * time.Second,
		MaxAttempts:  12,
		BackoffBase:  time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		Seed:         spec.Seed + 2,
		DegradeAfter: 3,
		Stats:        stClient,
	})
	if err != nil {
		return err
	}
	defer rc.Close()
	start := time.Now()
	for i, pos := range tour.Pos {
		if _, err := rc.Frame(geom.RectAround(pos, side), tour.SpeedAt(i)); err != nil {
			return fmt.Errorf("frame %d did not survive injected faults: %w", i, err)
		}
	}
	elapsed := time.Since(start)

	// Convergence check against the oracle.
	c := rc.Client()
	diverged := 0
	for _, id := range oracle.Objects() {
		om, _ := oracle.Mesh(id)
		gm, ok := c.Mesh(id)
		if !ok || c.CoeffCount(id) != oracle.CoeffCount(id) || om.NumVerts() != gm.NumVerts() {
			diverged++
			continue
		}
		for i := range om.Verts {
			if om.Verts[i] != gm.Verts[i] {
				diverged++
				break
			}
		}
	}

	cs, ss := stClient.Snapshot(), stServer.Snapshot()
	fmt.Fprintf(w, "fault injection: %d objects, %d-step tram tour, drop ~[%d,%d] B, corrupt ~[%d,%d] B\n",
		spec.Objects, spec.Steps, cfg.DropAfterMin, cfg.DropAfterMax, cfg.CorruptAfterMin, cfg.CorruptAfterMax)
	fmt.Fprintf(w, "  frames %d in %v · %d coefficients · %d bytes\n",
		tour.Len(), elapsed.Round(time.Millisecond), c.Coefficients, c.BytesReceived)
	fmt.Fprintf(w, "  faults injected %d · connections %d · retries %d (%d timeouts)\n",
		cs.Faults, dialer.Dials(), cs.Retries, cs.Timeouts)
	fmt.Fprintf(w, "  resume %d/%d hit/miss (server view %d/%d) · degraded %d (floor %.2f)\n",
		cs.ResumeHits, cs.ResumeMisses, ss.ResumeHits, ss.ResumeMisses, cs.Degraded, rc.DegradeFloor())
	if diverged > 0 {
		fmt.Fprintf(w, "  convergence FAILED: %d/%d objects diverged from the fault-free oracle\n",
			diverged, len(oracle.Objects()))
		return fmt.Errorf("experiment: %d objects diverged under faults", diverged)
	}
	fmt.Fprintf(w, "  convergence OK: all %d objects byte-identical to the fault-free oracle\n",
		len(oracle.Objects()))
	return nil
}
