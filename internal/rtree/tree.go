package rtree

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Variant selects the insertion/split algorithm.
type Variant int

const (
	// RStar is the R*-tree of Beckmann et al.: topological splits chosen by
	// margin/overlap and forced reinsertion on overflow. The paper's
	// motion-aware index uses an R*-tree with 4 KB pages and fanout 20.
	RStar Variant = iota
	// Quadratic is Guttman's original R-tree with quadratic split and no
	// reinsertion, kept as an ablation baseline.
	Quadratic
)

func (v Variant) String() string {
	switch v {
	case RStar:
		return "R*-tree"
	case Quadratic:
		return "R-tree(quadratic)"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config parameterizes a Tree.
type Config struct {
	Dims       int     // dimensionality (1..MaxDims)
	MaxEntries int     // node capacity; paper: 20
	MinEntries int     // minimum fill; 0 → 40% of MaxEntries
	Variant    Variant // split strategy
	PageBytes  int     // reported page size; paper: 4096. Informational.
}

// DefaultConfig mirrors the paper's experimental setup (§VII-D): page size
// 4 KB, node capacity 20, R*-tree.
func DefaultConfig(dims int) Config {
	return Config{Dims: dims, MaxEntries: 20, Variant: RStar, PageBytes: 4096}
}

// Stats is a snapshot of access counts. NodesRead counts every node
// touched by queries since the last reset — the I/O cost metric of
// Figures 12–13.
type Stats struct {
	NodesRead int64
	Queries   int64
}

type entry struct {
	rect  Rect
	child *node // nil at leaf level
	data  int64 // payload at leaf level
}

type node struct {
	leaf    bool
	entries []entry
}

func (n *node) mbr(dims int) Rect {
	r := n.entries[0].rect
	for i := 1; i < len(n.entries); i++ {
		r.extend(&n.entries[i].rect, dims)
	}
	return r
}

// Tree is an in-memory R-tree over int64 payloads. It is not safe for
// concurrent mutation; concurrent queries over a quiescent tree are safe
// (the access counters are atomic).
type Tree struct {
	cfg    Config
	root   *node
	height int // leaf level = 1, root level = height
	size   int
	// Access counters, updated atomically: queries may run concurrently
	// (one retrieval session per network client) over an otherwise
	// read-only tree.
	nodesRead atomic.Int64
	queries   atomic.Int64
	// lastHits remembers the previous Collect result size, the presizing
	// heuristic for the next one (atomic: Collect is a read operation and
	// may run concurrently with other reads).
	lastHits atomic.Int64
	// path is the tree-owned root-to-leaf scratch shared by every
	// mutation (choosePath on insert, findLeaf on delete). Mutations are
	// single-threaded by contract, so one buffer serves them all without
	// a per-call allocation.
	path []*node
}

// pathScratch returns the mutation path buffer, emptied and grown to the
// current height so the callers below never reallocate it mid-descent.
func (t *Tree) pathScratch() []*node {
	if cap(t.path) < t.height {
		t.path = make([]*node, 0, t.height)
	}
	return t.path[:0]
}

// New creates an empty tree. Invalid configuration panics: index
// parameters are experiment constants, not runtime input.
func New(cfg Config) *Tree {
	if cfg.Dims < 1 || cfg.Dims > MaxDims {
		panic(fmt.Sprintf("rtree: dims %d out of range", cfg.Dims))
	}
	if cfg.MaxEntries < 4 {
		panic("rtree: MaxEntries must be ≥ 4")
	}
	if cfg.MinEntries == 0 {
		cfg.MinEntries = cfg.MaxEntries * 2 / 5 // 40%, the R* recommendation
	}
	if cfg.MinEntries < 1 || cfg.MinEntries > cfg.MaxEntries/2 {
		panic(fmt.Sprintf("rtree: MinEntries %d invalid for MaxEntries %d",
			cfg.MinEntries, cfg.MaxEntries))
	}
	if cfg.PageBytes == 0 {
		cfg.PageBytes = 4096
	}
	return &Tree{
		cfg:    cfg,
		root:   &node{leaf: true},
		height: 1,
	}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a leaf-only tree).
func (t *Tree) Height() int { return t.height }

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// Stats returns a snapshot of the accumulated access counters.
func (t *Tree) Stats() Stats {
	return Stats{NodesRead: t.nodesRead.Load(), Queries: t.queries.Load()}
}

// ResetStats zeroes the access counters.
func (t *Tree) ResetStats() {
	t.nodesRead.Store(0)
	t.queries.Store(0)
}

type pendingInsert struct {
	e     entry
	level int
}

// Insert adds an item.
func (t *Tree) Insert(r Rect, data int64) {
	t.insertWithReinsertion(entry{rect: r, data: data}, 1)
	t.size++
}

// insertWithReinsertion runs one logical insertion, draining the forced-
// reinsertion work queue. Forced reinsertion fires at most once per level
// per logical insertion (the R* OverflowTreatment rule).
func (t *Tree) insertWithReinsertion(e entry, level int) {
	reinserted := make(map[int]bool)
	queue := []pendingInsert{{e: e, level: level}}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		queue = append(queue, t.place(p.e, p.level, reinserted)...)
	}
}

// place inserts e at the given level (1 = leaf), resolving overflows along
// the insertion path bottom-up. Splits keep node identity (the split node
// retains one group; the returned sibling holds the other), so the path
// stays valid. Entries evicted by forced reinsertion are returned for the
// caller to re-place.
func (t *Tree) place(e entry, level int, reinserted map[int]bool) []pendingInsert {
	dims := t.cfg.Dims
	path := t.choosePath(&e.rect, level)
	path[len(path)-1].entries = append(path[len(path)-1].entries, e)

	var evicted []pendingInsert
	var newSibling *node
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		nodeLevel := t.height - i
		if i < len(path)-1 {
			// Refresh the rect of the child we descended into and adopt the
			// sibling produced by the child's split, if any.
			child := path[i+1]
			for j := range n.entries {
				if n.entries[j].child == child {
					n.entries[j].rect = child.mbr(dims)
					break
				}
			}
			if newSibling != nil {
				n.entries = append(n.entries, entry{rect: newSibling.mbr(dims), child: newSibling})
				newSibling = nil
			}
		}
		if len(n.entries) <= t.cfg.MaxEntries {
			continue
		}
		if t.cfg.Variant == RStar && i > 0 && !reinserted[nodeLevel] {
			reinserted[nodeLevel] = true
			for _, ev := range t.evictFarthest(n) {
				evicted = append(evicted, pendingInsert{e: ev, level: nodeLevel})
			}
			continue
		}
		if t.cfg.Variant == RStar {
			newSibling = t.splitRStar(n)
		} else {
			newSibling = t.splitQuadratic(n)
		}
	}
	if newSibling != nil {
		// The root itself split: grow the tree.
		old := t.root
		t.root = &node{
			leaf: false,
			entries: []entry{
				{rect: old.mbr(dims), child: old},
				{rect: newSibling.mbr(dims), child: newSibling},
			},
		}
		t.height++
	}
	return evicted
}

// choosePath descends from the root to the target level, collecting the
// nodes visited. Subtree choice follows R*: at the level just above the
// target minimize overlap enlargement; higher up minimize area
// enlargement. The Guttman variant always minimizes area enlargement.
func (t *Tree) choosePath(r *Rect, level int) []*node {
	path := t.pathScratch()
	n := t.root
	path = append(path, n)
	for depth := t.height; depth > level; depth-- {
		var best int
		if depth == level+1 && t.cfg.Variant == RStar {
			best = t.chooseLeastOverlap(n, r)
		} else {
			best = t.chooseLeastEnlargement(n, r)
		}
		n = n.entries[best].child
		path = append(path, n)
	}
	return path
}

func (t *Tree) chooseLeastEnlargement(n *node, r *Rect) int {
	dims := t.cfg.Dims
	best, bestEnl, bestArea := 0, 0.0, 0.0
	for i := range n.entries {
		enl := n.entries[i].rect.enlargement(r, dims)
		area := n.entries[i].rect.area(dims)
		if i == 0 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

func (t *Tree) chooseLeastOverlap(n *node, r *Rect) int {
	dims := t.cfg.Dims
	best := 0
	bestOverlapInc, bestEnl, bestArea := 0.0, 0.0, 0.0
	for i := range n.entries {
		u := n.entries[i].rect.union(r, dims)
		var inc float64
		for j := range n.entries {
			if j == i {
				continue
			}
			inc += u.overlap(&n.entries[j].rect, dims) -
				n.entries[i].rect.overlap(&n.entries[j].rect, dims)
		}
		enl := n.entries[i].rect.enlargement(r, dims)
		area := n.entries[i].rect.area(dims)
		if i == 0 || inc < bestOverlapInc ||
			(inc == bestOverlapInc && (enl < bestEnl ||
				(enl == bestEnl && area < bestArea))) {
			best, bestOverlapInc, bestEnl, bestArea = i, inc, enl, area
		}
	}
	return best
}

// evictFarthest removes the ~30% of n's entries whose centers lie farthest
// from the node's centroid and returns them for reinsertion, ordered
// closest-first (the R* paper found close reinsert superior).
func (t *Tree) evictFarthest(n *node) []entry {
	dims := t.cfg.Dims
	p := t.cfg.MaxEntries * 3 / 10
	if p < 1 {
		p = 1
	}
	mbr := n.mbr(dims)
	idx := make([]int, len(n.entries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return n.entries[idx[a]].rect.centerDist(&mbr, dims) >
			n.entries[idx[b]].rect.centerDist(&mbr, dims)
	})
	removeSet := make(map[int]bool, p)
	removed := make([]entry, p)
	for k := 0; k < p; k++ {
		removeSet[idx[k]] = true
		// Farthest-first in idx; store reversed so callers pop close-first
		// off the end of the slice.
		removed[p-1-k] = n.entries[idx[k]]
	}
	kept := make([]entry, 0, len(n.entries)-p)
	for i := range n.entries {
		if !removeSet[i] {
			kept = append(kept, n.entries[i])
		}
	}
	n.entries = kept
	return removed
}
