package retrieval

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/index"
)

// TestPlanOnlyClientMatchesFullClient drives a plan-only client (nil
// session, PlanFrame + Advance — the mode the network client uses) next
// to a full client over the same frames: the plans must be identical at
// every step.
func TestPlanOnlyClientMatchesFullClient(t *testing.T) {
	srv := testServer(t, 4, 30)
	full := NewClient(NewSession(srv), nil)
	plan := NewClient(nil, nil)

	frames := []struct {
		q geom.Rect2
		s float64
	}{
		{geom.R2(0, 0, 200, 200), 0.8},
		{geom.R2(50, 20, 250, 220), 0.8},
		{geom.R2(50, 20, 250, 220), 0.2},   // slow down in place
		{geom.R2(700, 700, 900, 900), 0.5}, // teleport
		{geom.R2(720, 710, 920, 910), 0.9}, // speed up while moving
	}
	for i, f := range frames {
		want := full.PlanFrame(f.q, f.s)
		got := plan.PlanFrame(f.q, f.s)
		if len(got) != len(want) {
			t.Fatalf("frame %d: %d sub-queries vs %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j].Region != want[j].Region ||
				got[j].WMin != want[j].WMin || got[j].WMax != want[j].WMax {
				t.Fatalf("frame %d sub-query %d: %+v vs %+v", i, j, got[j], want[j])
			}
		}
		full.Frame(f.q, f.s)
		plan.Advance(f.q, f.s)
	}
}

// TestFrameOnNilSessionPanics documents the plan-only contract.
func TestFrameOnNilSessionPanics(t *testing.T) {
	c := NewClient(nil, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Frame(geom.R2(0, 0, 1, 1), 0.5)
}

// TestFrustumFrameFiltersAndDedups verifies direction-aware retrieval:
// only coefficients inside the sector arrive, nothing is double-sent
// across frames, and turning in place streams exactly the newly visible
// sector.
func TestFrustumFrameFiltersAndDedups(t *testing.T) {
	srv := testServer(t, 10, 50)
	c := NewClient(NewSession(srv), nil)

	apex := geom.V2(500, 500)
	east := geom.NewFrustum(apex, 0, 1.2, 400)
	resp, w := c.FrustumFrame(east, 0.3)
	if w != 0.3 {
		t.Fatalf("resolution = %v", w)
	}
	for _, id := range resp.IDs {
		if !east.Contains(index.MustCoeff(srv.Store(), id).Pos.XY()) {
			t.Fatalf("delivered coefficient outside the frustum")
		}
	}
	// Repeating the same view delivers nothing.
	again, _ := c.FrustumFrame(east, 0.3)
	if len(again.IDs) != 0 {
		t.Fatalf("repeat frustum delivered %d", len(again.IDs))
	}
	// Turning around delivers only the newly visible sector.
	west := geom.NewFrustum(apex, 3.14159, 1.2, 400)
	turned, _ := c.FrustumFrame(west, 0.3)
	for _, id := range turned.IDs {
		p := index.MustCoeff(srv.Store(), id).Pos.XY()
		if !west.Contains(p) {
			t.Fatalf("delivered coefficient outside the new frustum")
		}
		if east.Contains(p) {
			t.Fatalf("re-delivered a coefficient from the first view")
		}
	}
	// Sanity: both views together match one wide-open query, minus the
	// sectors' complement.
	if len(resp.IDs) == 0 || len(turned.IDs) == 0 {
		t.Fatal("expected data in both views")
	}
}

// TestFilterDoesNotPoisonDeliveredSet ensures a filtered-out coefficient
// remains retrievable later.
func TestFilterDoesNotPoisonDeliveredSet(t *testing.T) {
	srv := testServer(t, 4, 51)
	session := NewSession(srv)
	all := geom.R2(0, 0, 1000, 1000)
	// First: a query whose filter rejects everything.
	none := session.Retrieve([]SubQuery{{
		Region: all, WMin: 0, WMax: 1,
		Filter: func(geom.Vec3) bool { return false },
	}})
	if len(none.IDs) != 0 {
		t.Fatalf("rejecting filter delivered %d", len(none.IDs))
	}
	// Then an unfiltered query must deliver the full set.
	full := session.Retrieve([]SubQuery{{Region: all, WMin: 0, WMax: 1}})
	if int64(len(full.IDs)) != srv.Store().NumCoeffs() {
		t.Fatalf("delivered %d of %d after filtered query",
			len(full.IDs), srv.Store().NumCoeffs())
	}
}
