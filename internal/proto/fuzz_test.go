package proto

import (
	"bytes"
	"testing"
)

// FuzzReader throws arbitrary bytes at every message decoder. The
// invariant is totality: decoders must return (value, error) without
// panicking or over-allocating, for any input. Run with
// `go test -fuzz=FuzzReader ./internal/proto` to explore; the seed corpus
// runs as part of the normal test suite.
func FuzzReader(f *testing.F) {
	// Seeds: one valid message of each kind plus junk.
	var hello bytes.Buffer
	NewWriter(&hello).WriteHello(Hello{Version: Version, Objects: 2, Levels: 3, BaseVerts: 6})
	f.Add(hello.Bytes())

	var req bytes.Buffer
	NewWriter(&req).WriteRequest(Request{Speed: 0.5})
	f.Add(req.Bytes())

	var resp bytes.Buffer
	NewWriter(&resp).WriteResponse(Response{IO: 3, Coeffs: make([]Coeff, 2)})
	f.Add(resp.Bytes())

	var errMsg bytes.Buffer
	NewWriter(&errMsg).WriteError("nope")
	f.Add(errMsg.Bytes())

	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		tag, err := r.ReadTag()
		if err != nil {
			return
		}
		switch tag {
		case TagHello:
			r.ReadHello()
		case TagRequest:
			if req, err := r.ReadRequest(); err == nil && len(req.Subs) > MaxSubQueries {
				t.Fatalf("oversized request decoded: %d", len(req.Subs))
			}
		case TagResponse:
			if resp, err := r.ReadResponse(); err == nil && len(resp.Coeffs) > MaxCoeffs {
				t.Fatalf("oversized response decoded: %d", len(resp.Coeffs))
			}
		case TagError:
			r.ReadError()
		}
	})
}
