package wavelet

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestApplyIdempotentShuffled pins down the contract the wire protocol's
// fault-tolerance layer leans on: re-applying any subset of
// coefficients, in any order and any number of times, leaves the
// reconstruction byte-identical. A resuming client re-receives frames
// the server rolled back (and, after a failed resume, whole windows);
// duplicates must be harmless.
func TestApplyIdempotentShuffled(t *testing.T) {
	d := sphereDecomp(t, 3)
	rng := rand.New(rand.NewSource(9))

	clean := NewReconstructor(d.Base, geom.V3(0, 0, 0), d.J)
	clean.ApplyAll(d.Coeffs)

	noisy := NewReconstructor(d.Base, geom.V3(0, 0, 0), d.J)
	noisy.ApplyAll(d.Coeffs)
	// Replay random subsets, shuffled, several times over.
	for round := 0; round < 5; round++ {
		perm := rng.Perm(len(d.Coeffs))
		for _, i := range perm[:len(perm)/2] {
			noisy.Apply(d.Coeffs[i])
		}
	}

	if clean.Count() != noisy.Count() {
		t.Fatalf("duplicate applies changed count: %d != %d", noisy.Count(), clean.Count())
	}
	cm, nm := clean.Mesh(), noisy.Mesh()
	if cm.NumVerts() != nm.NumVerts() {
		t.Fatalf("topology diverged: %d != %d verts", nm.NumVerts(), cm.NumVerts())
	}
	for i := range cm.Verts {
		if cm.Verts[i] != nm.Verts[i] {
			t.Fatalf("vertex %d diverged after duplicate applies: %v != %v",
				i, nm.Verts[i], cm.Verts[i])
		}
	}
}

// TestApplyIdempotentPartial checks the same invariant mid-stream: a
// reconstruction holding only part of the data must also be insensitive
// to duplicate delivery (that is the state a resumed session is in).
func TestApplyIdempotentPartial(t *testing.T) {
	d := sphereDecomp(t, 3)
	half := d.Coeffs[:len(d.Coeffs)/2]

	a := NewReconstructor(d.Base, geom.V3(0, 0, 0), d.J)
	a.ApplyAll(half)

	b := NewReconstructor(d.Base, geom.V3(0, 0, 0), d.J)
	b.ApplyAll(half)
	b.ApplyAll(half)
	b.ApplyAll(half)

	am, bm := a.Mesh(), b.Mesh()
	for i := range am.Verts {
		if am.Verts[i] != bm.Verts[i] {
			t.Fatalf("partial reconstruction vertex %d diverged: %v != %v",
				i, bm.Verts[i], am.Verts[i])
		}
	}
}
