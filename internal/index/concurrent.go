package index

import (
	"sync"
)

// Mutable is an access method that supports incremental updates after its
// initial build. MotionAware implements it; the bulk-loaded baselines do
// not need to.
type Mutable interface {
	Index
	// Insert indexes the store coefficient with the given global id.
	Insert(id int64)
	// Delete removes the coefficient with the given global id, reporting
	// whether it was present.
	Delete(id int64) bool
}

// Concurrent makes a Mutable index safe for concurrent readers *and*
// writers: Search/Len/Name take a read lock, Insert/Delete/Update take
// the write lock. Readers proceed in parallel with each other (the
// underlying indexes are already safe for concurrent Search — see the
// Index contract); a writer drains and excludes them only for the
// duration of its mutation, so the motion-aware index keeps serving
// window queries while background updates land.
type Concurrent struct {
	mu  sync.RWMutex
	idx Index
}

// NewConcurrent wraps an index. The wrapper owns the synchronization;
// callers must not mutate the wrapped index directly afterwards.
func NewConcurrent(idx Index) *Concurrent {
	return &Concurrent{idx: idx}
}

// Unwrap returns the wrapped index. Mutating it directly bypasses the
// lock; use Update for that.
func (c *Concurrent) Unwrap() Index { return c.idx }

// Name identifies the access method in experiment output.
func (c *Concurrent) Name() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return "concurrent(" + c.idx.Name() + ")"
}

// Len returns the number of indexed coefficients.
func (c *Concurrent) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.Len()
}

// Search answers a window query under the read lock; any number of
// searches proceed in parallel.
func (c *Concurrent) Search(q Query) ([]int64, int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.Search(q)
}

// Insert indexes one coefficient under the write lock. Panics if the
// wrapped index is not Mutable.
func (c *Concurrent) Insert(id int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mutable().Insert(id)
}

// Delete removes one coefficient under the write lock. Panics if the
// wrapped index is not Mutable.
func (c *Concurrent) Delete(id int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mutable().Delete(id)
}

// Update runs an arbitrary batch mutation under the write lock, e.g.
// re-indexing several coefficients atomically with respect to readers.
func (c *Concurrent) Update(f func(Index)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(c.idx)
}

func (c *Concurrent) mutable() Mutable {
	m, ok := c.idx.(Mutable)
	if !ok {
		panic("index: " + c.idx.Name() + " does not support mutation")
	}
	return m
}
