package workload

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func testCrowd(seed int64) CrowdSpec {
	return CrowdSpec{
		Space:      geom.R2(0, 0, 400, 400),
		Clients:    40,
		Steps:      24,
		Attractors: 3,
		Overlap:    0.8,
		Seed:       seed,
	}
}

func sameTourPath(a, b []geom.Vec2) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCrowdDeterministicBySeed(t *testing.T) {
	a := GenerateCrowd(testCrowd(42))
	b := GenerateCrowd(testCrowd(42))
	for i := range a {
		if !sameTourPath(a[i].Pos, b[i].Pos) {
			t.Fatalf("client %d: same seed produced different paths", i)
		}
	}
	c := GenerateCrowd(testCrowd(43))
	identical := 0
	for i := range a {
		if sameTourPath(a[i].Pos, c[i].Pos) {
			identical++
		}
	}
	if identical > 0 {
		t.Fatalf("different seeds produced %d identical paths", identical)
	}
}

func TestCrowdTourIsolation(t *testing.T) {
	// CrowdTour(i) must not depend on other tours having been generated:
	// a cold standalone generation matches the batch.
	spec := testCrowd(7)
	batch := GenerateCrowd(spec)
	for _, i := range []int{0, 5, spec.flockCutoff() - 1, spec.flockCutoff(), spec.Clients - 1} {
		cold := CrowdTour(spec, i)
		if !sameTourPath(cold.Pos, batch[i].Pos) {
			t.Fatalf("client %d: standalone path differs from batch", i)
		}
		if cold.Speed != batch[i].Speed || cold.VMax != batch[i].VMax {
			t.Fatalf("client %d: standalone speed params differ from batch", i)
		}
	}
}

func TestCrowdFlocksSharePathsExactly(t *testing.T) {
	// Every member of a flock follows the attractor float-for-float —
	// the property that makes their window queries coincide and coalesce.
	spec := testCrowd(11)
	tours := GenerateCrowd(spec)
	for i := 0; i < spec.Clients; i++ {
		k := spec.FlockOf(i)
		if k < 0 {
			continue
		}
		want := AttractorPath(spec, k)
		if !sameTourPath(tours[i].Pos, want.Pos) {
			t.Fatalf("flocked client %d does not follow attractor %d exactly", i, k)
		}
	}
	// Distinct attractors must diverge, or "overlap factor" means nothing.
	a0, a1 := AttractorPath(spec, 0), AttractorPath(spec, 1)
	if sameTourPath(a0.Pos, a1.Pos) {
		t.Fatal("attractors 0 and 1 produced identical paths")
	}
}

func TestCrowdOverlapBounds(t *testing.T) {
	// The flocked fraction tracks Overlap to within one client, for any
	// overlap, including the exact 0 and 1 endpoints.
	for _, overlap := range []float64{0, 0.25, 0.5, 0.8, 0.9, 1} {
		spec := testCrowd(3)
		spec.Overlap = overlap
		flocked := 0
		for i := 0; i < spec.Clients; i++ {
			if spec.FlockOf(i) >= 0 {
				flocked++
			}
		}
		got := float64(flocked) / float64(spec.Clients)
		if math.Abs(got-overlap) > 1.0/float64(spec.Clients) {
			t.Fatalf("overlap %.2f: flocked fraction %.3f off by more than one client", overlap, got)
		}
		if overlap == 0 && flocked != 0 {
			t.Fatalf("overlap 0 flocked %d clients", flocked)
		}
		if overlap == 1 && flocked != spec.Clients {
			t.Fatalf("overlap 1 flocked only %d of %d clients", flocked, spec.Clients)
		}
	}
}

func TestCrowdRoamersIndependent(t *testing.T) {
	// Roamers must not collapse onto each other or onto any attractor.
	spec := testCrowd(19)
	tours := GenerateCrowd(spec)
	roamers := []int{}
	for i := 0; i < spec.Clients; i++ {
		if spec.FlockOf(i) < 0 {
			roamers = append(roamers, i)
		}
	}
	if len(roamers) < 2 {
		t.Fatalf("spec produced %d roamers, need ≥ 2", len(roamers))
	}
	for x := 0; x < len(roamers); x++ {
		for y := x + 1; y < len(roamers); y++ {
			if sameTourPath(tours[roamers[x]].Pos, tours[roamers[y]].Pos) {
				t.Fatalf("roamers %d and %d share a path", roamers[x], roamers[y])
			}
		}
		for k := 0; k < spec.Attractors; k++ {
			if sameTourPath(tours[roamers[x]].Pos, AttractorPath(spec, k).Pos) {
				t.Fatalf("roamer %d follows attractor %d", roamers[x], k)
			}
		}
	}
}

func TestCrowdStaysInSpace(t *testing.T) {
	spec := testCrowd(23)
	for _, tour := range GenerateCrowd(spec) {
		for s, p := range tour.Pos {
			if !spec.Space.Contains(p) {
				t.Fatalf("step %d at %+v escapes space %+v", s, p, spec.Space)
			}
		}
	}
}
