// Command meshgen generates one multiresolution building and reports its
// wavelet decomposition: per-level coefficient counts, magnitude and
// value statistics, serialized sizes, and the reconstruction error at a
// sweep of resolution cutoffs. With -obj it also writes Wavefront OBJ
// files of the reconstruction at several resolutions, ready for any mesh
// viewer.
//
// Usage:
//
//	meshgen [-levels 5] [-seed 1] [-obj building]
package main

import (
	"flag"
	"fmt"
	"log"
	"io"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/persist"
	"repro/internal/wavelet"
)

func main() {
	var (
		levels = flag.Int("levels", 5, "subdivision levels")
		seed   = flag.Int64("seed", 1, "building seed")
		objOut = flag.String("obj", "", "write OBJ files with this prefix")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	surf := mesh.RandomBuilding(rng, geom.V2(0, 0), mesh.DefaultBuildingSpec())
	d := wavelet.Decompose(0, mesh.BaseMeshFor(surf), surf, *levels)

	fmt.Printf("building (seed %d), %d subdivision levels\n", *seed, *levels)
	fmt.Printf("final mesh: %d vertices, %d faces\n",
		d.Final.NumVerts(), d.Final.NumFaces())
	fmt.Printf("total: %d coefficients, %.1f KB serialized\n\n",
		d.NumCoeffs(), float64(d.SizeBytes())/1024)

	fmt.Printf("%-8s%10s%12s%12s%12s\n", "level", "coeffs", "avg |d|", "avg w", "KB")
	for lvl := int8(wavelet.BaseLevel); lvl < int8(*levels); lvl++ {
		cs := d.LevelOf(lvl)
		if len(cs) == 0 {
			continue
		}
		var mag, val float64
		for i := range cs {
			mag += cs[i].Delta.Len()
			val += cs[i].Value
		}
		name := fmt.Sprintf("W%d", lvl)
		if lvl == wavelet.BaseLevel {
			name = "base"
		}
		fmt.Printf("%-8s%10d%12.4f%12.4f%12.1f\n",
			name, len(cs),
			mag/float64(len(cs)), val/float64(len(cs)),
			float64(len(cs)*wavelet.WireBytes)/1024)
	}

	fmt.Printf("\n%-12s%12s%14s\n", "cutoff w", "coeffs", "RMS error")
	for _, w := range []float64{1.0, 0.8, 0.6, 0.4, 0.2, 0.0} {
		r := wavelet.NewReconstructor(d.Base, d.Bounds().Center(), d.J)
		kept := 0
		for i := range d.Coeffs {
			if d.Coeffs[i].Value >= w {
				r.Apply(d.Coeffs[i])
				kept++
			}
		}
		fmt.Printf("%-12.1f%12d%14.6f\n", w, kept, r.Error(d.Final))
		if *objOut != "" {
			name := fmt.Sprintf("%s_w%02.0f.obj", *objOut, w*10)
			if err := writeOBJ(name, r.Mesh()); err != nil {
				log.Fatalf("meshgen: %v", err)
			}
			fmt.Printf("            wrote %s\n", name)
		}
	}
}

// writeOBJ dumps a mesh via the library's OBJ writer, atomically, so an
// interrupted run never leaves a half-written file behind.
func writeOBJ(path string, m *mesh.Mesh) error {
	return persist.WriteToAtomic(path, func(w io.Writer) error {
		return mesh.WriteOBJ(w, m)
	})
}
