package experiment

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestShardBenchSmoke runs a miniature sweep end to end: every
// configuration must record work, and the JSON artifact must round-trip.
func TestShardBenchSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shards.json")
	var out bytes.Buffer
	res, err := RunShardBench(ShardBenchSpec{
		Seed:     11,
		Objects:  12,
		Readers:  2,
		Writers:  2,
		Duration: 30 * time.Millisecond,
		Shards:   []int{1, 4},
	}, path, &out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.Reads == 0 || res.Baseline.Writes == 0 {
		t.Fatalf("idle baseline: %+v", res.Baseline)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Reads == 0 || p.Writes == 0 {
			t.Fatalf("idle configuration: %+v", p)
		}
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ShardBenchResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Baseline.Writes != res.Baseline.Writes || len(back.Points) != len(res.Points) {
		t.Fatalf("JSON artifact diverged: %+v", back)
	}
	if !bytes.Contains(out.Bytes(), []byte("best sharded write throughput")) {
		t.Fatalf("summary missing verdict:\n%s", out.String())
	}
}
