package buffer_test

import (
	"fmt"

	"repro/internal/buffer"
)

// A client heading east (probability 0.55) gets most of a 20-block buffer
// allocated ahead of it by the recursive equation-(2) scheme.
func ExampleAllocate() {
	probs := []float64{0.55, 0.20, 0.05, 0.20} // east, north, west, south
	fmt.Println(buffer.Allocate(probs, 20))
	// Output:
	// [14 3 0 3]
}

// With equal left/right probabilities the optimal split of equation (2)
// is the midpoint.
func ExampleOptimalSplit() {
	fmt.Println(buffer.OptimalSplit(0.5, 0.5, 10))
	// Output:
	// 5
}
