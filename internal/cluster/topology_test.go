package cluster

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseTopologyValid(t *testing.T) {
	src := `
# cluster map
city = 127.0.0.1:7001, 127.0.0.1:7002

park = 127.0.0.1:7002
museum = [::1]:7003
`
	top, err := ParseTopology(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := top.Default(); got != "city" {
		t.Fatalf("default scene %q, want city (first listed)", got)
	}
	if len(top.Order) != 3 {
		t.Fatalf("parsed %d scenes, want 3", len(top.Order))
	}
	if got := top.Replicas["city"]; len(got) != 2 || got[0] != "127.0.0.1:7001" || got[1] != "127.0.0.1:7002" {
		t.Fatalf("city replicas = %v", got)
	}
	if got := top.Replicas["museum"]; len(got) != 1 || got[0] != "[::1]:7003" {
		t.Fatalf("museum replicas = %v", got)
	}
	// Backends dedups across scenes, preserving first-appearance order.
	backends := top.Backends()
	want := []string{"127.0.0.1:7001", "127.0.0.1:7002", "[::1]:7003"}
	if len(backends) != len(want) {
		t.Fatalf("backends = %v, want %v", backends, want)
	}
	for i := range want {
		if backends[i] != want[i] {
			t.Fatalf("backends = %v, want %v", backends, want)
		}
	}
}

// TestParseTopologyErrors pins the exact failure modes a malformed
// topology must produce — each case names the substring operators will
// grep for.
func TestParseTopologyErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "duplicate scene",
			src:  "city = 127.0.0.1:7001\ncity = 127.0.0.1:7002\n",
			want: `line 2: duplicate scene "city"`,
		},
		{
			name: "empty replica list",
			src:  "city = 127.0.0.1:7001\npark =  , \n",
			want: `line 2: scene "park" has no replicas`,
		},
		{
			name: "unparseable address",
			src:  "city = 127.0.0.1\n",
			want: `line 1: bad address "127.0.0.1"`,
		},
		{
			name: "empty port",
			src:  "city = 127.0.0.1:\n",
			want: `line 1: bad address "127.0.0.1:": empty host or port`,
		},
		{
			name: "missing equals",
			src:  "# ok\ncity 127.0.0.1:7001\n",
			want: "line 2: missing '='",
		},
		{
			name: "bad scene name",
			src:  "ci/ty = 127.0.0.1:7001\n",
			want: "line 1: engine: scene name contains invalid byte",
		},
		{
			name: "empty scene name",
			src:  " = 127.0.0.1:7001\n",
			want: "line 1: engine: empty scene name",
		},
		{
			name: "no scenes",
			src:  "# only comments\n\n",
			want: "topology: no scenes",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTopology(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("parse accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestControlRoundTrip(t *testing.T) {
	reqs := []ControlRequest{
		{Op: OpStatus},
		{Op: OpDrain, Scene: "city", Target: "127.0.0.1:7002"},
	}
	for _, req := range reqs {
		wire := EncodeControlRequest(req)
		got, err := ReadControlRequest(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("round-trip %+v: %v", req, err)
		}
		if got != req {
			t.Fatalf("round-trip %+v -> %+v", req, got)
		}
	}
	reps := []ControlReply{
		{OK: true, Msg: "drained"},
		{OK: false, Msg: "unknown scene"},
	}
	for _, rep := range reps {
		got, err := ReadControlReply(bytes.NewReader(EncodeControlReply(rep)))
		if err != nil {
			t.Fatalf("round-trip %+v: %v", rep, err)
		}
		if got != rep {
			t.Fatalf("round-trip %+v -> %+v", rep, got)
		}
	}
}

func TestControlRejectsDamage(t *testing.T) {
	wire := EncodeControlRequest(ControlRequest{Op: OpDrain, Scene: "city", Target: "127.0.0.1:7002"})
	// Flip one payload bit: the CRC must catch it.
	bad := append([]byte(nil), wire...)
	bad[5] ^= 0x40
	if _, err := ReadControlRequest(bytes.NewReader(bad)); err == nil {
		t.Fatal("bit-flipped control frame accepted")
	}
	// A frame claiming an absurd length must be refused before allocation.
	huge := []byte{0xff, 0xff, 0xff, 0x7f}
	if _, err := ReadControlRequest(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversize frame: err = %v", err)
	}
	// Unknown op and malformed operands are rejected at decode.
	if _, err := DecodeControlRequest([]byte{99, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := DecodeControlRequest([]byte{OpDrain, 1, 0, 'c', 0, 0}); err == nil {
		t.Fatal("drain without target accepted")
	}
}
