package index

import (
	"slices"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// ObjectIndex is the access method of the non-multiresolution baseline
// system (§VII-E): a plain 2D R*-tree over whole-object bounding boxes.
// A window query returns object ids; the baseline client then retrieves
// every coefficient of each hit object (always the highest resolution).
type ObjectIndex struct {
	store *Store
	tree  *rtree.Tree
}

// NewObjectIndex builds the whole-object index.
func NewObjectIndex(store *Store, cfg rtree.Config) *ObjectIndex {
	if cfg.Dims == 0 {
		cfg = rtree.DefaultConfig(2)
	}
	items := make([]rtree.Item, 0, store.NumObjects())
	for i, d := range store.Objects {
		b := d.Bounds().XY()
		items = append(items, rtree.Item{
			Rect: rtree.Box(b.Min.X, b.Max.X, b.Min.Y, b.Max.Y),
			Data: int64(i),
		})
	}
	return &ObjectIndex{store: store, tree: rtree.BulkLoad(cfg, items)}
}

// Name identifies the access method in experiment output.
func (o *ObjectIndex) Name() string { return "object(full-res)" }

// Len returns the number of indexed objects.
func (o *ObjectIndex) Len() int { return o.tree.Len() }

// Tree exposes the underlying R*-tree.
func (o *ObjectIndex) Tree() *rtree.Tree { return o.tree }

// SearchObjects returns the ids of objects whose bounding boxes intersect
// the region, plus node I/O. An empty (inverted) region matches nothing —
// rtree.Box would panic on it.
func (o *ObjectIndex) SearchObjects(region geom.Rect2) ([]int32, int64) {
	if region.Empty() {
		return nil, 0
	}
	var ids []int32
	io := o.tree.SearchCounted(
		rtree.Box(region.Min.X, region.Max.X, region.Min.Y, region.Max.Y),
		func(_ rtree.Rect, data int64) bool {
			ids = append(ids, int32(data))
			return true
		})
	return ids, io
}

// Search adapts the object index to the Index interface: it expands each
// hit object into all of its coefficient ids (ascending, per the Index
// determinism contract), ignoring the value band (the baseline has no
// notion of resolution).
func (o *ObjectIndex) Search(q Query) ([]int64, int64) {
	objs, io := o.SearchObjects(q.Region)
	var ids []int64
	for _, obj := range objs {
		d := o.store.Objects[obj]
		for v := range d.Coeffs {
			ids = append(ids, o.store.ID(obj, int32(v)))
		}
	}
	slices.Sort(ids)
	return ids, io
}
