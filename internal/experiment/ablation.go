package experiment

import (
	"math/rand"
	"sort"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/mesh"
	"repro/internal/motion"
	"repro/internal/pmesh"
	"repro/internal/retrieval"
	"repro/internal/rtree"
	"repro/internal/wavelet"
	"repro/internal/workload"
)

// Ablations are experiments the paper's design rests on but does not
// plot: the R*-tree choice, the state-estimation predictor, the k = 4
// sector count, the 3D-vs-4D index layout, and the §II wavelet-vs-
// progressive-mesh compactness claim.

// AblIndexVariant compares window-query I/O of the same coefficient set
// indexed three ways: R*-tree built by insertion, Guttman quadratic-split
// tree built by insertion, and the STR bulk-loaded tree the reproduction
// uses. Justifies both the paper's R* choice and our build method.
func AblIndexVariant(cfg Config) *Table {
	h := newHarness(cfg)
	d := h.dataset(h.cfg.Objects/2+1, workload.Uniform)
	items := make([]rtree.Item, 0, d.Store.NumCoeffs())
	for _, obj := range d.Store.Objects {
		for i := range obj.Coeffs {
			c := &obj.Coeffs[i]
			items = append(items, rtree.Item{
				Rect: rtree.FromXYW(c.Support.XY(), c.Value, c.Value),
				Data: d.Store.ID(c.Object, c.Vertex),
			})
		}
	}
	build := map[string]func() *rtree.Tree{
		"r*-insert": func() *rtree.Tree {
			cfg := rtree.DefaultConfig(3)
			tr := rtree.New(cfg)
			for _, it := range items {
				tr.Insert(it.Rect, it.Data)
			}
			return tr
		},
		"quadratic": func() *rtree.Tree {
			cfg := rtree.DefaultConfig(3)
			cfg.Variant = rtree.Quadratic
			tr := rtree.New(cfg)
			for _, it := range items {
				tr.Insert(it.Rect, it.Data)
			}
			return tr
		},
		"str-bulk": func() *rtree.Tree {
			return rtree.BulkLoad(rtree.DefaultConfig(3), items)
		},
	}

	t := &Table{ID: "abl-index", Title: "Index build ablation: window-query I/O",
		XLabel: "speed", YLabel: "node reads/query"}
	names := []string{"r*-insert", "quadratic", "str-bulk"}
	side := d.QuerySide(h.cfg.QueryFrac)
	rng := rand.New(rand.NewSource(h.cfg.Seed))
	const numQueries = 60
	centers := make([]geom.Vec2, numQueries)
	for i := range centers {
		centers[i] = geom.V2(rng.Float64()*900+50, rng.Float64()*900+50)
	}
	for _, name := range names {
		tr := build[name]()
		s := Series{Name: name}
		for _, speed := range h.cfg.Speeds {
			w := retrieval.Identity(speed)
			var io int64
			for _, c := range centers {
				q := geom.RectAround(c, side)
				io += tr.SearchCounted(rtree.FromXYW(q, w, 1), func(rtree.Rect, int64) bool { return true })
			}
			s.X = append(s.X, speed)
			s.Y = append(s.Y, float64(io)/numQueries)
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// AblPredictor compares the RLS/Kalman state estimator against
// constant-velocity extrapolation inside the full prefetching loop — the
// paper's §II critique of linear-movement prefetching, measured on hit
// rate and utilization.
func AblPredictor(cfg Config) *Table {
	h := newHarness(cfg)
	d := h.dataset(h.cfg.Objects, workload.Uniform)
	sys := core.NewSystem(core.Config{Dataset: d, Kind: core.MotionAwareSystem})
	grid := geom.NewGrid(d.Spec.Space, 40, 40)
	side := d.QuerySide(0.05)

	t := &Table{ID: "abl-predictor", Title: "Predictor ablation: RLS vs linear",
		XLabel: "buffer KB", YLabel: "%"}
	estimators := []struct {
		name string
		mk   func() motion.Estimator
	}{
		{"rls", func() motion.Estimator { return motion.NewPredictor(3) }},
		{"linear", func() motion.Estimator { return motion.NewLinearPredictor() }},
	}
	for _, est := range estimators {
		hit := Series{Name: "hit " + est.name}
		util := Series{Name: "util " + est.name}
		for _, size := range h.cfg.Buffers {
			var hs, us []float64
			for _, tour := range h.tourSet(d, motion.Tram, 0.5) {
				fetcher := &blockFetcher{srv: sys.Server(), grid: grid}
				mgr := buffer.NewManager(buffer.Config{
					Grid:      grid,
					Capacity:  size,
					Policy:    buffer.MotionAware,
					Estimator: est.mk(),
				}, fetcher)
				for i, pos := range tour.Pos {
					mgr.Step(pos, geom.RectAround(pos, side), retrieval.Identity(tour.SpeedAt(i)))
				}
				met := mgr.Metrics()
				hs = append(hs, met.HitRate()*100)
				us = append(us, met.Utilization()*100)
			}
			hit.X = append(hit.X, float64(size>>10))
			hit.Y = append(hit.Y, mean(hs))
			util.X = append(util.X, float64(size>>10))
			util.Y = append(util.Y, mean(us))
		}
		t.Series = append(t.Series, hit, util)
	}
	return t
}

// blockFetcher adapts a retrieval server to the buffer manager with
// position-partitioned blocks (the same adapter core uses).
type blockFetcher struct {
	srv  *retrieval.Server
	grid *geom.Grid
}

func (f *blockFetcher) BlockBytes(cell geom.Cell, wmin float64) int64 {
	bytes, _ := f.srv.BlockBytes(f.grid.CellRect(cell), wmin)
	return bytes
}

// AblSectors sweeps the direction count k of the buffer allocation
// (paper Fig. 4 uses k = 4).
func AblSectors(cfg Config) *Table {
	h := newHarness(cfg)
	d := h.dataset(h.cfg.Objects, workload.Uniform)
	sys := core.NewSystem(core.Config{Dataset: d, Kind: core.MotionAwareSystem})
	grid := geom.NewGrid(d.Spec.Space, 40, 40)
	side := d.QuerySide(0.05)
	size := h.cfg.Buffers[len(h.cfg.Buffers)/2]

	t := &Table{ID: "abl-sectors", Title: "Sector count ablation (k directions)",
		XLabel: "k", YLabel: "%"}
	hit := Series{Name: "hit rate"}
	util := Series{Name: "utilization"}
	for _, k := range []int{2, 4, 8} {
		var hs, us []float64
		for _, tour := range h.tourSet(d, motion.Tram, 0.5) {
			fetcher := &blockFetcher{srv: sys.Server(), grid: grid}
			mgr := buffer.NewManager(buffer.Config{
				Grid: grid, Capacity: size, Policy: buffer.MotionAware, K: k,
			}, fetcher)
			for i, pos := range tour.Pos {
				mgr.Step(pos, geom.RectAround(pos, side), retrieval.Identity(tour.SpeedAt(i)))
			}
			met := mgr.Metrics()
			hs = append(hs, met.HitRate()*100)
			us = append(us, met.Utilization()*100)
		}
		hit.X = append(hit.X, float64(k))
		hit.Y = append(hit.Y, mean(hs))
		util.X = append(util.X, float64(k))
		util.Y = append(util.Y, mean(us))
	}
	t.Series = append(t.Series, hit, util)
	return t
}

// AblLayout compares the 3D (x, y, w) index the paper evaluates against
// the 4D (x, y, z, w) index it designs (§VI-B vs §VII-D).
func AblLayout(cfg Config) *Table {
	h := newHarness(cfg)
	d := h.dataset(h.cfg.Objects, workload.Uniform)
	xyw := index.NewMotionAware(d.Store, index.XYW, rtree.Config{})
	xyzw := index.NewMotionAware(d.Store, index.XYZW, rtree.Config{})
	t := &Table{ID: "abl-layout", Title: "Index layout ablation: 3D xyw vs 4D xyzw",
		XLabel: "speed", YLabel: "node reads/query"}
	a := Series{Name: "xyw"}
	b := Series{Name: "xyzw"}
	for _, speed := range h.cfg.Speeds {
		w := retrieval.Identity(speed)
		a.X = append(a.X, speed)
		a.Y = append(a.Y, indexIOPerQuery(h, d, xyw, h.cfg.QueryFrac, w))
		b.X = append(b.X, speed)
		b.Y = append(b.Y, indexIOPerQuery(h, d, xyzw, h.cfg.QueryFrac, w))
	}
	t.Series = append(t.Series, a, b)
	return t
}

// AblCompactness traces transmission bytes against reconstruction error
// for wavelet coefficients (minimal encoding) and progressive-mesh
// vertex splits on the same object — the §II claim that wavelets code
// progressive detail more compactly.
func AblCompactness(cfg Config) *Table {
	h := newHarness(cfg)
	s := mesh.RandomBuilding(rand.New(rand.NewSource(h.cfg.Seed+77)), geom.V2(0, 0),
		mesh.DefaultBuildingSpec())
	levels := 3
	d := wavelet.Decompose(0, mesh.BaseMeshFor(s), s, levels)
	full := d.Final
	pm := pmesh.Decompose(full, 16)

	t := &Table{ID: "abl-compactness",
		Title:  "Progressive transmission: wavelets vs progressive mesh",
		XLabel: "KB sent", YLabel: "chamfer error"}

	// Wavelet trace: coefficients by descending value.
	coeffs := append([]wavelet.Coefficient(nil), d.Coeffs...)
	sort.SliceStable(coeffs, func(i, j int) bool { return coeffs[i].Value > coeffs[j].Value })
	recon := wavelet.NewReconstructor(d.Base, d.Bounds().Center(), d.J)
	wv := Series{Name: "wavelet"}
	step := len(coeffs) / 8
	for i := 0; i < len(coeffs); i++ {
		recon.Apply(coeffs[i])
		if (i+1)%step == 0 || i == len(coeffs)-1 {
			wv.X = append(wv.X, float64((i+1)*wavelet.MinimalWireBytes)/1024)
			wv.Y = append(wv.Y, pmesh.ChamferError(recon.Mesh(), full))
		}
	}

	pmS := Series{Name: "progressive-mesh"}
	for frac := 1; frac <= 8; frac++ {
		k := pm.NumSplits() * frac / 8
		pmS.X = append(pmS.X, float64(pm.WireBytesAt(k))/1024)
		pmS.Y = append(pmS.Y, pmesh.ChamferError(pm.MeshAt(k), full))
	}
	t.Series = append(t.Series, wv, pmS)
	return t
}

// AblationGenerators lists the ablation experiments.
func AblationGenerators() []struct {
	ID  string
	Run func(Config) *Table
} {
	return []struct {
		ID  string
		Run func(Config) *Table
	}{
		{"abl-index", AblIndexVariant},
		{"abl-predictor", AblPredictor},
		{"abl-sectors", AblSectors},
		{"abl-layout", AblLayout},
		{"abl-compactness", AblCompactness},
	}
}
