package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

func TestVec2Arithmetic(t *testing.T) {
	a := V2(1, 2)
	b := V2(3, -4)
	if got := a.Add(b); got != V2(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V2(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V2(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := b.Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
	if got := a.Dist(a); got != 0 {
		t.Errorf("Dist(self) = %v", got)
	}
}

func TestVec2Normalize(t *testing.T) {
	v := V2(3, 4).Normalize()
	if !approx(v.Len(), 1) {
		t.Errorf("normalized length = %v", v.Len())
	}
	if z := V2(0, 0).Normalize(); z != V2(0, 0) {
		t.Errorf("zero normalize = %v", z)
	}
}

func TestVec2Angle(t *testing.T) {
	cases := []struct {
		v    Vec2
		want float64
	}{
		{V2(1, 0), 0},
		{V2(0, 1), math.Pi / 2},
		{V2(-1, 0), math.Pi},
		{V2(0, -1), 3 * math.Pi / 2},
	}
	for _, c := range cases {
		if got := c.v.Angle(); !approx(got, c.want) {
			t.Errorf("Angle(%v) = %v want %v", c.v, got, c.want)
		}
	}
}

func TestVec2Lerp(t *testing.T) {
	a, b := V2(0, 0), V2(10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != V2(5, 10) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestVec3Arithmetic(t *testing.T) {
	a := V3(1, 2, 3)
	b := V3(-1, 0, 2)
	if got := a.Add(b); got != V3(0, 2, 5) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V3(2, 2, 1) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != -1+0+6 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Mid(b); got != V3(0, 1, 2.5) {
		t.Errorf("Mid = %v", got)
	}
	if got := a.XY(); got != V2(1, 2) {
		t.Errorf("XY = %v", got)
	}
}

func TestVec3Cross(t *testing.T) {
	x, y, z := V3(1, 0, 0), V3(0, 1, 0), V3(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x×y = %v", got)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y×z = %v", got)
	}
	if got := z.Cross(x); got != y {
		t.Errorf("z×x = %v", got)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V3(norm(ax), norm(ay), norm(az))
		b := V3(norm(bx), norm(by), norm(bz))
		c := a.Cross(b)
		// c ⟂ a and c ⟂ b, within floating tolerance scaled by magnitudes.
		tol := 1e-6 * (1 + a.Len()*b.Len()*(a.Len()+b.Len()))
		return math.Abs(c.Dot(a)) <= tol && math.Abs(c.Dot(b)) <= tol
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestVec3NormalizeProperty(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := V3(x, y, z)
		if !isFinite3(v) || v.Len() == 0 || v.Len() > 1e150 {
			return true
		}
		n := v.Normalize()
		return math.Abs(n.Len()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func isFinite3(v Vec3) bool {
	ok := func(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
	return ok(v.X) && ok(v.Y) && ok(v.Z)
}

func TestVecStrings(t *testing.T) {
	if s := V2(1, 2).String(); s == "" {
		t.Error("empty Vec2 string")
	}
	if s := V3(1, 2, 3).String(); s == "" {
		t.Error("empty Vec3 string")
	}
}
