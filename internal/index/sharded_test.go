package index

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/stats"
)

// randQuery draws a query over the store's space, mixing generic windows
// with the degenerate shapes that have bitten queryRect before:
// point-sized regions and point value bands.
func randQuery(rng *rand.Rand, b geom.Rect3) Query {
	q := Query{WMin: 0, WMax: rng.Float64()}
	switch rng.Intn(4) {
	case 0: // point-sized window
		p := geom.V2(
			b.Min.X+rng.Float64()*(b.Max.X-b.Min.X),
			b.Min.Y+rng.Float64()*(b.Max.Y-b.Min.Y))
		q.Region = geom.Rect2{Min: p, Max: p}
	case 1: // thin sliver
		x := b.Min.X + rng.Float64()*(b.Max.X-b.Min.X)
		q.Region = geom.Rect2{
			Min: geom.V2(x, b.Min.Y),
			Max: geom.V2(x+1e-6, b.Max.Y)}
	default: // generic window
		x0 := b.Min.X + rng.Float64()*(b.Max.X-b.Min.X)
		y0 := b.Min.Y + rng.Float64()*(b.Max.Y-b.Min.Y)
		q.Region = geom.Rect2{
			Min: geom.V2(x0, y0),
			Max: geom.V2(x0+rng.Float64()*400, y0+rng.Float64()*400)}
	}
	if rng.Intn(8) == 0 {
		q.WMin = q.WMax // point value band
	}
	q.ZMin, q.ZMax = 0, 100
	return q
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedMatchesMotionAware is the property pinning the tentpole:
// for every shard count, Sharded returns the byte-identical id stream the
// serial MotionAware oracle returns — across random queries interleaved
// with Insert/Delete churn applied to both sides. (I/O counts are NOT
// compared: a partitioned index legitimately reads different node sets.)
func TestShardedMatchesMotionAware(t *testing.T) {
	for _, layout := range []Layout{XYW, XYZW} {
		for _, k := range []int{1, 2, 7, 16} {
			store := testStore(t, 12, 42)
			oracle := NewMotionAware(store, layout, rtree.Config{})
			sharded := NewSharded(store, layout, ShardedConfig{Shards: k})
			if sharded.NumShards() != k {
				t.Fatalf("NumShards = %d, want %d", sharded.NumShards(), k)
			}
			if sharded.Len() != oracle.Len() {
				t.Fatalf("k=%d: Len %d != oracle %d", k, sharded.Len(), oracle.Len())
			}

			rng := rand.New(rand.NewSource(int64(k) * 7))
			bounds := store.Bounds()
			gone := make(map[int64]bool)
			for step := 0; step < 300; step++ {
				switch rng.Intn(5) {
				case 0: // delete a random live coefficient from both indexes
					id := rng.Int63n(store.NumCoeffs())
					if !gone[id] {
						if !oracle.Delete(id) || !sharded.Delete(id) {
							t.Fatalf("k=%d step %d: delete %d not found", k, step, id)
						}
						gone[id] = true
					}
				case 1: // re-insert a previously deleted coefficient
					for id := range gone {
						oracle.Insert(id)
						sharded.Insert(id)
						delete(gone, id)
						break
					}
				default:
					q := randQuery(rng, bounds)
					want, _ := oracle.Search(q)
					got, _ := sharded.Search(q)
					if !equalIDs(got, want) {
						t.Fatalf("layout=%v k=%d step %d: %d ids != oracle %d ids (query %+v)",
							layout, k, step, len(got), len(want), q)
					}
				}
			}
			if sharded.Len() != oracle.Len() {
				t.Fatalf("k=%d after churn: Len %d != oracle %d", k, sharded.Len(), oracle.Len())
			}
		}
	}
}

// TestShardedSerialAndParallelAgree pins that the worker-pool fan-out is
// invisible in the results.
func TestShardedSerialAndParallelAgree(t *testing.T) {
	store := testStore(t, 10, 7)
	idx := NewSharded(store, XYW, ShardedConfig{Shards: 8})
	rng := rand.New(rand.NewSource(9))
	bounds := store.Bounds()
	for i := 0; i < 50; i++ {
		q := randQuery(rng, bounds)
		idx.SetParallelism(8)
		par, pio := idx.Search(q)
		idx.SetParallelism(1)
		ser, sio := idx.Search(q)
		if !equalIDs(par, ser) || pio != sio {
			t.Fatalf("parallel (%d ids, io %d) != serial (%d ids, io %d)",
				len(par), pio, len(ser), sio)
		}
	}
}

// TestShardedConcurrentChurn races readers against per-shard writers; the
// race detector is the assertion, plus every search staying a subset of
// the full id space and the final Len reconciling.
func TestShardedConcurrentChurn(t *testing.T) {
	store := testStore(t, 10, 11)
	idx := NewSharded(store, XYW, ShardedConfig{Shards: 8})
	before := idx.Len()
	bounds := store.Bounds()
	stop := make(chan struct{})
	var readers, writers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := randQuery(rng, bounds)
				ids, _ := idx.Search(q)
				for _, id := range ids {
					if id < 0 || id >= store.NumCoeffs() {
						panic("id out of range")
					}
				}
			}
		}(int64(r))
	}
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				id := rng.Int63n(store.NumCoeffs())
				if idx.Delete(id) {
					idx.Insert(id)
				}
			}
		}(int64(100 + w))
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if idx.Len() != before {
		t.Fatalf("Len %d != %d after delete/insert churn", idx.Len(), before)
	}
}

func TestGridShape(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 6: {2, 3}, 7: {1, 7}, 12: {3, 4}, 16: {4, 4}}
	for k, want := range cases {
		r, c := gridShape(k)
		if r != want[0] || c != want[1] {
			t.Errorf("gridShape(%d) = %d×%d, want %d×%d", k, r, c, want[0], want[1])
		}
		if r*c != k {
			t.Errorf("gridShape(%d) = %d×%d does not multiply back", k, r, c)
		}
	}
}

func TestShardedStatsWiring(t *testing.T) {
	store := testStore(t, 6, 13)
	idx := NewSharded(store, XYW, ShardedConfig{Shards: 4})
	st := stats.New()
	idx.SetStats(st)
	q := Query{Region: store.Bounds().XY(), WMin: 0, WMax: 1}
	ids, io := idx.Search(q)
	if len(ids) == 0 {
		t.Fatal("full-space query returned nothing")
	}
	snap := st.Snapshot()
	if len(snap.Shards) != 4 {
		t.Fatalf("shard table = %d entries", len(snap.Shards))
	}
	var searches, sumIO int64
	for _, sh := range snap.Shards {
		searches += sh.Searches
		sumIO += sh.IO
	}
	if searches == 0 || sumIO != io {
		t.Fatalf("recorded %d searches io %d, Search reported io %d", searches, sumIO, io)
	}
	if lens := idx.ShardLens(); len(lens) != 4 {
		t.Fatalf("ShardLens = %v", lens)
	}
}

// TestQueryRectDegenerateWindows is the regression test for the
// queryRect fix: a point-sized window must still return every coefficient
// whose support contains the point (closed-interval semantics), while a
// provably empty (inverted) window must return nothing instead of the
// spurious hits an inverted rtree.Rect used to produce.
func TestQueryRectDegenerateWindows(t *testing.T) {
	store := testStore(t, 6, 17)
	for _, idx := range []Index{
		NewMotionAware(store, XYW, rtree.Config{}),
		NewSharded(store, XYW, ShardedConfig{Shards: 4}),
	} {
		// A point at a known coefficient's support center must hit it.
		c := MustCoeff(store, 0)
		p := c.Support.XY().Min
		q := Query{Region: geom.Rect2{Min: p, Max: p}, WMin: 0, WMax: 1}
		ids, _ := idx.Search(q)
		found := false
		for _, id := range ids {
			if id == 0 {
				found = true
			}
			s := MustCoeff(store, id).Support.XY()
			if p.X < s.Min.X || p.X > s.Max.X || p.Y < s.Min.Y || p.Y > s.Max.Y {
				t.Fatalf("%s: hit %d whose support %v excludes the point %v", idx.Name(), id, s, p)
			}
		}
		if !found {
			t.Fatalf("%s: point window at coefficient 0's support corner missed it", idx.Name())
		}

		// Inverted region: provably empty, must not search.
		inv := Query{Region: geom.Rect2{Min: geom.V2(900, 900), Max: geom.V2(100, 100)}, WMin: 0, WMax: 1}
		if ids, io := idx.Search(inv); len(ids) != 0 || io != 0 {
			t.Fatalf("%s: inverted window returned %d ids, io %d", idx.Name(), len(ids), io)
		}
		// Inverted value band: likewise.
		invW := Query{Region: store.Bounds().XY(), WMin: 1, WMax: 0}
		if ids, _ := idx.Search(invW); len(ids) != 0 {
			t.Fatalf("%s: inverted value band returned %d ids", idx.Name(), len(ids))
		}
	}

	// The XYZW layout additionally rejects inverted height bands.
	ma := NewMotionAware(store, XYZW, rtree.Config{})
	invZ := Query{Region: store.Bounds().XY(), ZMin: 50, ZMax: -50, WMin: 0, WMax: 1}
	if ids, _ := ma.Search(invZ); len(ids) != 0 {
		t.Fatalf("inverted height band returned %d ids", len(ids))
	}
}
