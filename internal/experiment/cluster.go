package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/motion"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/workload"
)

// clusterScene is the scene the cluster harness serves; its checkpoint
// and journaled sessions cross two backend handoffs under this name.
const clusterScene = "city"

// ClusterSpec configures the cluster acceptance experiment: resilient
// clients tour a scene through the gateway while the harness first kills
// the owning backend (failover to a cold replica booted from the dead
// backend's durable state) and then live-drains the scene onto a third,
// initially empty backend. The zero value gets quick-scale defaults.
type ClusterSpec struct {
	Seed    int64
	Objects int // dataset size (default 40)
	Levels  int // subdivision depth (default 3)
	Steps   int // tour length per client (default 80)
	Shards  int // index shard count per scene

	// DataDir is the durable state root ("" = fresh temp dir, removed
	// afterwards). The scene's checkpoints and session journal live in
	// DataDir/owner; the drain target keeps its own DataDir/adopter.
	DataDir string
}

func (s ClusterSpec) fill() ClusterSpec {
	if s.Objects == 0 {
		s.Objects = 40
	}
	if s.Levels == 0 {
		s.Levels = 3
	}
	if s.Steps == 0 {
		s.Steps = 80
	}
	return s
}

// reserveAddr grabs a concrete listen address for a backend that will be
// started later, keeping the listener open (never accepting) so nothing
// else can claim the port. Until released, the gateway's probes against
// it time out — which is exactly how the harness exercises ejection.
func reserveAddr() (net.Listener, string, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return lis, lis.Addr().String(), nil
}

// RunCluster runs the cluster acceptance experiment and prints a
// summary. Two resilient clients ride the same seeded tour through a
// scene-routing gateway:
//
//   - phase 1 (failover): mid-tour, the scene's live session is severed
//     and the owning backend killed; a replica — listed second in the
//     topology, ejected by probes while its address was a dead reservation
//     — boots from the dead backend's checkpoints and journal, is
//     re-admitted, and the client resumes there with its token;
//   - phase 2 (drain): mid-tour of a second client, the controller
//     live-drains the scene onto an initially empty backend; the client
//     reconnects to the flipped route and resumes from the shipped
//     session.
//
// The experiment fails (as an error) unless both clients finish
// byte-identical to a single-process oracle with zero re-plans, each
// resumed exactly once, both resumes were served from restored-flagged
// sessions (journal replay and drain ship respectively), the gateway
// recorded the failover and the drain, and the replica's ejection and
// re-admission were both observed.
func RunCluster(spec ClusterSpec, w io.Writer) error {
	spec = spec.fill()
	k1, k2 := spec.Steps/3, 2*spec.Steps/3
	if k1 < 2 || k2 <= k1 || k2 >= spec.Steps-1 {
		return fmt.Errorf("experiment: tour of %d steps too short for a kill and a drain", spec.Steps)
	}

	root := spec.DataDir
	if root == "" {
		tmp, err := os.MkdirTemp("", "cluster-experiment-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}
	ownerDir := filepath.Join(root, "owner")
	adoptDir := filepath.Join(root, "adopter")

	d := workload.Generate(workload.Spec{NumObjects: spec.Objects, Levels: spec.Levels, Seed: spec.Seed + 5})
	sceneFor := func(st *stats.Stats) engine.SceneConfig {
		sd := workload.Generate(workload.Spec{NumObjects: spec.Objects, Levels: spec.Levels, Seed: spec.Seed + 5})
		return engine.SceneConfig{Name: clusterScene, Dataset: sd, Levels: spec.Levels, Shards: spec.Shards, Stats: st}
	}

	// The owning backend, and a reserved address for the replica that
	// will take over after the kill.
	st1, st2, st3 := stats.New(), stats.New(), stats.New()
	b1, err := cluster.StartBackend(cluster.BackendConfig{
		Scenes:  []engine.SceneConfig{sceneFor(st1)},
		DataDir: ownerDir,
		Stats:   st1,
	})
	if err != nil {
		return err
	}
	reserved, a2, err := reserveAddr()
	if err != nil {
		return err
	}
	a1 := b1.Addr()

	gwStats := stats.New()
	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Topology: &cluster.Topology{
			Order:    []string{clusterScene},
			Replicas: map[string][]string{clusterScene: {a1, a2}},
		},
		Stats:        gwStats,
		ProbeEvery:   20 * time.Millisecond,
		ProbeTimeout: 150 * time.Millisecond,
		FailAfter:    2,
		DialTimeout:  time.Second,
	})
	if err != nil {
		return err
	}
	gwLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	gwDone := make(chan struct{})
	go func() {
		defer close(gwDone)
		gw.Serve(gwLis)
	}()
	defer func() { gw.Close(); <-gwDone }()
	gwAddr := gwLis.Addr().String()

	// Single-process oracle: an off-topology backend with an identically
	// generated dataset, toured fault-free.
	oracleB, err := cluster.StartBackend(cluster.BackendConfig{
		Scenes: []engine.SceneConfig{sceneFor(stats.New())},
	})
	if err != nil {
		return err
	}
	defer oracleB.Stop()

	space := d.Store.Bounds().XY()
	tour := motion.NewTour(motion.Tram, motion.TourSpec{
		Space: space, Steps: spec.Steps, Speed: 0.25,
	}, rand.New(rand.NewSource(spec.Seed)))
	side := d.QuerySide(0.10)

	oracle, err := proto.DialScene(oracleB.Addr(), clusterScene, nil)
	if err != nil {
		return err
	}
	for i, pos := range tour.Pos {
		if _, err := oracle.Frame(geom.RectAround(pos, side), tour.SpeedAt(i)); err != nil {
			return fmt.Errorf("oracle frame %d: %w", i, err)
		}
	}
	oracle.Close()
	if len(oracle.Objects()) == 0 {
		return fmt.Errorf("experiment: oracle retrieved no objects; enlarge the tour or dataset")
	}

	compare := func(c *proto.Client) int {
		diverged := 0
		for _, id := range oracle.Objects() {
			om, _ := oracle.Mesh(id)
			gm, ok := c.Mesh(id)
			if !ok || c.CoeffCount(id) != oracle.CoeffCount(id) || om.NumVerts() != gm.NumVerts() {
				diverged++
				continue
			}
			for i := range om.Verts {
				if om.Verts[i] != gm.Verts[i] {
					diverged++
					break
				}
			}
		}
		return diverged
	}

	dialClient := func(seed int64) (*proto.ResilientClient, error) {
		return proto.DialResilient(proto.ResilientConfig{
			Addrs:        []string{gwAddr},
			Scene:        clusterScene,
			FrameTimeout: 10 * time.Second,
			MaxAttempts:  20,
			BackoffBase:  2 * time.Millisecond,
			BackoffMax:   100 * time.Millisecond,
			Seed:         seed,
		})
	}

	start := time.Now()

	// Phase 1: kill-one-backend failover. The replica address is a dead
	// reservation, so the prober must eject it before the kill; after the
	// replacement boots from the dead backend's DataDir it must be
	// re-admitted.
	rc1, err := dialClient(spec.Seed + 2)
	if err != nil {
		return err
	}
	defer rc1.Close()
	var b2 *cluster.Backend
	for i, pos := range tour.Pos {
		if i == k1 {
			if !waitUntil(5*time.Second, func() bool { return !gw.BackendUp(a2) }) {
				return fmt.Errorf("experiment: probes never ejected the dead replica %s", a2)
			}
			parksBefore := b1.Journal().Parks()
			if n := b1.Server().SeverScene(clusterScene); n != 1 {
				return fmt.Errorf("experiment: severed %d connections on %s, want 1", n, a1)
			}
			if !waitUntil(2*time.Second, func() bool { return b1.Journal().Parks() > parksBefore }) {
				return fmt.Errorf("experiment: severed session was never parked durably")
			}
			time.Sleep(10 * time.Millisecond) // park bookkeeping racing the poll
			b1.Kill()
			reserved.Close()
			b2, err = cluster.StartBackend(cluster.BackendConfig{
				Addr:    a2,
				DataDir: ownerDir,
				Stats:   st2,
			})
			if err != nil {
				return fmt.Errorf("experiment: replica failed to boot from %s: %w", ownerDir, err)
			}
			if !waitUntil(5*time.Second, func() bool { return gw.BackendUp(a2) }) {
				return fmt.Errorf("experiment: probes never re-admitted the recovered replica %s", a2)
			}
		}
		if _, err := rc1.Frame(geom.RectAround(pos, side), tour.SpeedAt(i)); err != nil {
			return fmt.Errorf("frame %d did not survive the backend kill: %w", i, err)
		}
	}
	rc1.Close()
	defer b2.Stop()

	// Phase 2: live drain onto an initially empty backend.
	b3, err := cluster.StartBackend(cluster.BackendConfig{
		DataDir: adoptDir,
		Stats:   st3,
	})
	if err != nil {
		return err
	}
	defer b3.Stop()
	a3 := b3.Addr()
	ctl := cluster.NewController(gw, []*cluster.Backend{b2, b3}, gwStats)

	rc2, err := dialClient(spec.Seed + 3)
	if err != nil {
		return err
	}
	defer rc2.Close()
	var rep cluster.DrainReport
	for i, pos := range tour.Pos {
		if i == k2 {
			rep, err = ctl.Drain(clusterScene, a3)
			if err != nil {
				return fmt.Errorf("drain: %w", err)
			}
			if rep.Severed != 1 || rep.Shipped != 1 || rep.Adopted != 1 {
				return fmt.Errorf("experiment: drain report %+v, want 1 severed/shipped/adopted", rep)
			}
		}
		if _, err := rc2.Frame(geom.RectAround(pos, side), tour.SpeedAt(i)); err != nil {
			return fmt.Errorf("frame %d did not survive the drain: %w", i, err)
		}
	}
	rc2.Close()
	elapsed := time.Since(start)

	if got := gw.Routes()[clusterScene]; len(got) != 1 || got[0] != a3 {
		return fmt.Errorf("experiment: post-drain route = %v, want [%s]", got, a3)
	}

	div1, div2 := compare(rc1.Client()), compare(rc2.Client())
	gs := gwStats.Snapshot()
	s1, s2, s3 := st1.Snapshot(), st2.Snapshot(), st3.Snapshot()
	var routes, probes, probeFails, failovers int64
	for _, b := range gs.Backends {
		routes += b.Routes
		probes += b.Probes
		probeFails += b.ProbeFails
		failovers += b.Failovers
	}

	fmt.Fprintf(w, "cluster: %d objects, two %d-step tram tours through the gateway, scene %q\n",
		spec.Objects, spec.Steps, clusterScene)
	fmt.Fprintf(w, "  phase 1 failover: killed %s at frame %d -> replica %s booted from its durable state\n",
		a1, k1, a2)
	fmt.Fprintf(w, "  phase 2 drain: %s -> %s at frame %d (severed %d, shipped %d, adopted %d, purged %d)\n",
		rep.From, rep.To, k2, rep.Severed, rep.Shipped, rep.Adopted, rep.Purged)
	fmt.Fprintf(w, "  gateway: routes %d · failovers %d · probes %d (failed %d) · drains %d · %v elapsed\n",
		routes, failovers, probes, probeFails, gs.Drains, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  recovery: resumes %d+%d · re-plans %d+%d · journal-restored resumes %d · drain-shipped resumes %d\n",
		rc1.Resumes, rc2.Resumes, rc1.Replans, rc2.Replans, s2.ResumesRestored, s3.ResumesRestored)

	if div1 > 0 || div2 > 0 {
		fmt.Fprintf(w, "  convergence FAILED: %d+%d of %d objects diverged from the single-process oracle\n",
			div1, div2, len(oracle.Objects()))
		return fmt.Errorf("experiment: %d objects diverged across failover and drain", div1+div2)
	}
	fmt.Fprintf(w, "  convergence OK: all %d objects byte-identical to the single-process oracle, twice\n",
		len(oracle.Objects()))

	if rc1.Replans != 0 || rc2.Replans != 0 {
		return fmt.Errorf("experiment: %d+%d re-plans — a session was lost", rc1.Replans, rc2.Replans)
	}
	if rc1.Resumes != 1 || rc2.Resumes != 1 {
		return fmt.Errorf("experiment: resumes %d+%d, want exactly 1 per client", rc1.Resumes, rc2.Resumes)
	}
	if s2.ResumesRestored != 1 {
		return fmt.Errorf("experiment: %d journal-restored resumes on the replica, want 1", s2.ResumesRestored)
	}
	if s3.ResumesRestored != 1 {
		return fmt.Errorf("experiment: %d drain-shipped resumes on the adopter, want 1", s3.ResumesRestored)
	}
	if s1.ResumesRestored != 0 {
		return fmt.Errorf("experiment: %d restored resumes on the killed backend", s1.ResumesRestored)
	}
	// Every resume in this harness crossed a kill or a drain, so the
	// clients' resume counts and the backends' restored counts reconcile.
	if total := s2.ResumesRestored + s3.ResumesRestored; total != rc1.Resumes+rc2.Resumes {
		return fmt.Errorf("experiment: %d restored resumes vs %d client resumes", total, rc1.Resumes+rc2.Resumes)
	}
	if gs.Drains != 1 {
		return fmt.Errorf("experiment: %d drains recorded, want 1", gs.Drains)
	}
	if fo := gs.Backends[a1].Failovers; fo < 1 {
		return fmt.Errorf("experiment: no failover recorded against the killed backend %s", a1)
	}
	if gs.Backends[a2].Probes < 1 {
		return fmt.Errorf("experiment: the recovered replica was never probed successfully")
	}
	return nil
}
