// Package motion provides the client-motion substrate of the paper:
// synthetic tram and pedestrian tours standing in for the authors'
// collected head-movement traces (§VII-A), and the state-estimation
// motion predictor of §V-B — a recursive-least-squares estimate of the
// state transition matrix, multi-step prediction with error-covariance
// propagation, and the grid-cell visit probabilities the buffer manager
// allocates by.
package motion

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// TourKind distinguishes the two movement settings of the experiments.
type TourKind int

const (
	// Tram tours follow a rail grid: long straight segments, turns only at
	// intersections, near-constant speed. They are the more predictable
	// setting.
	Tram TourKind = iota
	// Pedestrian tours are correlated random walks with heading drift and
	// occasional stops — the less predictable setting.
	Pedestrian
)

func (k TourKind) String() string {
	if k == Tram {
		return "tram"
	}
	return "walk"
}

// Tour is one client trajectory: a position per timestamp plus the
// normalized nominal speed it was generated at.
type Tour struct {
	Kind  TourKind
	Speed float64 // normalized nominal speed in (0, 1]
	Pos   []geom.Vec2
	VMax  float64 // ground distance per step corresponding to speed 1.0
}

// Len returns the number of timestamps.
func (t *Tour) Len() int { return len(t.Pos) }

// SpeedAt returns the normalized instantaneous speed at step i (distance
// covered entering step i divided by VMax), clamped to [0, 1]. Step 0
// reports the nominal speed.
func (t *Tour) SpeedAt(i int) float64 {
	if i <= 0 || i >= len(t.Pos) {
		return t.Speed
	}
	s := t.Pos[i].Dist(t.Pos[i-1]) / t.VMax
	if s > 1 {
		s = 1
	}
	return s
}

// Distance returns the total ground distance of the tour.
func (t *Tour) Distance() float64 {
	var d float64
	for i := 1; i < len(t.Pos); i++ {
		d += t.Pos[i].Dist(t.Pos[i-1])
	}
	return d
}

func (t *Tour) String() string {
	return fmt.Sprintf("%v tour: %d steps at speed %.3f", t.Kind, t.Len(), t.Speed)
}

// TourSpec parameterizes tour generation.
type TourSpec struct {
	Space    geom.Rect2 // the data space the tour stays inside
	Steps    int        // number of timestamps
	Speed    float64    // normalized speed in (0, 1]
	VMax     float64    // ground units per step at speed 1.0; 0 → 2% of space width
	RailGap  float64    // tram rail spacing; 0 → 10% of space width
	StopProb float64    // pedestrian per-step probability of pausing; default 0.05
}

func (s *TourSpec) fill() {
	if s.VMax == 0 {
		s.VMax = 0.02 * s.Space.Width()
	}
	if s.RailGap == 0 {
		s.RailGap = 0.1 * s.Space.Width()
	}
	if s.StopProb == 0 {
		s.StopProb = 0.05
	}
	if s.Speed <= 0 {
		s.Speed = 0.5
	}
	if s.Speed > 1 {
		s.Speed = 1
	}
}

// NewTour generates a reproducible tour of the given kind.
func NewTour(kind TourKind, spec TourSpec, rng *rand.Rand) *Tour {
	spec.fill()
	switch kind {
	case Tram:
		return tramTour(spec, rng)
	default:
		return pedestrianTour(spec, rng)
	}
}

// Tours generates n tours with consecutive sub-seeds, mirroring the
// paper's 10 tourists per setting.
func Tours(kind TourKind, spec TourSpec, n int, seed int64) []*Tour {
	out := make([]*Tour, n)
	for i := range out {
		out[i] = NewTour(kind, spec, rand.New(rand.NewSource(seed+int64(i)*7919)))
	}
	return out
}

// tramTour walks a Manhattan rail grid: straight runs along grid lines
// with random turns at intersections and a small lateral jitter standing
// in for head movement. Long straight segments make it the predictable
// setting.
func tramTour(spec TourSpec, rng *rand.Rand) *Tour {
	t := &Tour{Kind: Tram, Speed: spec.Speed, VMax: spec.VMax}
	gap := spec.RailGap
	step := spec.Speed * spec.VMax

	// Start at a random intersection away from the border.
	cols := int(spec.Space.Width()/gap) - 1
	rows := int(spec.Space.Height()/gap) - 1
	if cols < 2 {
		cols = 2
	}
	if rows < 2 {
		rows = 2
	}
	ix, iy := 1+rng.Intn(cols-1), 1+rng.Intn(rows-1)
	pos := geom.V2(spec.Space.Min.X+float64(ix)*gap, spec.Space.Min.Y+float64(iy)*gap)
	dirs := []geom.Vec2{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}}
	dir := dirs[rng.Intn(4)]
	untilTurn := gap * float64(1+rng.Intn(4)) // run 1–4 blocks before a turn

	for i := 0; i < spec.Steps; i++ {
		jitter := geom.V2(rng.NormFloat64(), rng.NormFloat64()).Scale(0.01 * step)
		t.Pos = append(t.Pos, pos.Add(jitter))
		next := pos.Add(dir.Scale(step))
		// Bounce off the border by turning around.
		if !spec.Space.Contains(next) {
			dir = dir.Scale(-1)
			next = pos.Add(dir.Scale(step))
			untilTurn = gap * float64(1+rng.Intn(4))
		}
		pos = next
		untilTurn -= step
		if untilTurn <= 0 {
			// Turn left or right at the next intersection (or keep going).
			if rng.Float64() < 0.7 {
				if dir.X != 0 {
					dir = geom.V2(0, float64(1-2*rng.Intn(2)))
				} else {
					dir = geom.V2(float64(1-2*rng.Intn(2)), 0)
				}
				// Snap onto the rail grid so runs stay axis-aligned.
				pos = snapToGrid(pos, spec.Space.Min, gap)
			}
			untilTurn = gap * float64(1+rng.Intn(4))
		}
	}
	return t
}

func snapToGrid(p, origin geom.Vec2, gap float64) geom.Vec2 {
	return geom.V2(
		origin.X+math.Round((p.X-origin.X)/gap)*gap,
		origin.Y+math.Round((p.Y-origin.Y)/gap)*gap,
	)
}

// pedestrianTour is a correlated random walk: the heading drifts with
// Gaussian noise, the walker occasionally pauses, and the border deflects
// it inward. Frequent heading changes make it the unpredictable setting.
func pedestrianTour(spec TourSpec, rng *rand.Rand) *Tour {
	t := &Tour{Kind: Pedestrian, Speed: spec.Speed, VMax: spec.VMax}
	step := spec.Speed * spec.VMax
	pos := geom.V2(
		spec.Space.Min.X+spec.Space.Width()*(0.25+0.5*rng.Float64()),
		spec.Space.Min.Y+spec.Space.Height()*(0.25+0.5*rng.Float64()),
	)
	heading := rng.Float64() * 2 * math.Pi
	pausedFor := 0

	for i := 0; i < spec.Steps; i++ {
		t.Pos = append(t.Pos, pos)
		if pausedFor > 0 {
			pausedFor--
			continue
		}
		if rng.Float64() < spec.StopProb {
			pausedFor = 1 + rng.Intn(3)
			continue
		}
		heading += rng.NormFloat64() * 0.35
		d := geom.V2(math.Cos(heading), math.Sin(heading))
		next := pos.Add(d.Scale(step))
		if !spec.Space.Contains(next) {
			// Turn toward the center of the space.
			toCenter := spec.Space.Center().Sub(pos)
			heading = toCenter.Angle() + rng.NormFloat64()*0.3
			d = geom.V2(math.Cos(heading), math.Sin(heading))
			next = pos.Add(d.Scale(step))
			if !spec.Space.Contains(next) {
				next = pos
			}
		}
		pos = next
	}
	return t
}
