// Package mesh implements the triangular-mesh substrate of the paper:
// indexed triangle meshes approximating 3D object surfaces, the regular
// 1→4 subdivision that underlies the wavelet decomposition (paper §III),
// canonical base meshes, and the analytic target surfaces used to
// synthesize building-like objects.
package mesh

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Mesh is an indexed triangle mesh: a vertex array plus faces referencing
// vertices by position. Vertex indices are int32 to keep serialized
// coefficients compact (a level-6 object has ~16K vertices).
type Mesh struct {
	Verts []geom.Vec3
	Faces [][3]int32
}

// Clone returns a deep copy of m.
func (m *Mesh) Clone() *Mesh {
	out := &Mesh{
		Verts: make([]geom.Vec3, len(m.Verts)),
		Faces: make([][3]int32, len(m.Faces)),
	}
	copy(out.Verts, m.Verts)
	copy(out.Faces, m.Faces)
	return out
}

// NumVerts returns the number of vertices.
func (m *Mesh) NumVerts() int { return len(m.Verts) }

// NumFaces returns the number of triangles.
func (m *Mesh) NumFaces() int { return len(m.Faces) }

// Edge is an undirected edge identified by its endpoint indices with
// A < B. Subdivision inserts one midpoint vertex per edge.
type Edge struct {
	A, B int32
}

// MakeEdge builds the canonical (ordered) form of the undirected edge
// {a, b}.
func MakeEdge(a, b int32) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// Edges returns the set of undirected edges of m in deterministic
// (sorted) order.
func (m *Mesh) Edges() []Edge {
	set := make(map[Edge]struct{}, len(m.Faces)*3/2)
	for _, f := range m.Faces {
		set[MakeEdge(f[0], f[1])] = struct{}{}
		set[MakeEdge(f[1], f[2])] = struct{}{}
		set[MakeEdge(f[2], f[0])] = struct{}{}
	}
	out := make([]Edge, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// NumEdges returns the number of undirected edges.
func (m *Mesh) NumEdges() int { return len(m.Edges()) }

// EulerCharacteristic returns V − E + F. Closed orientable surfaces of
// genus 0 (all our objects) have characteristic 2, and regular subdivision
// preserves it — a cheap global sanity check on topology code.
func (m *Mesh) EulerCharacteristic() int {
	return m.NumVerts() - m.NumEdges() + m.NumFaces()
}

// VertexNeighbors returns, for each vertex, the sorted list of vertices it
// shares an edge with. The naive index of §VI stores these neighbor lists
// so a window query can pull in the vertices connected to in-window ones.
func (m *Mesh) VertexNeighbors() [][]int32 {
	sets := make([]map[int32]struct{}, len(m.Verts))
	add := func(a, b int32) {
		if sets[a] == nil {
			sets[a] = make(map[int32]struct{}, 6)
		}
		sets[a][b] = struct{}{}
	}
	for _, f := range m.Faces {
		add(f[0], f[1])
		add(f[1], f[0])
		add(f[1], f[2])
		add(f[2], f[1])
		add(f[2], f[0])
		add(f[0], f[2])
	}
	out := make([][]int32, len(m.Verts))
	for i, s := range sets {
		lst := make([]int32, 0, len(s))
		for v := range s {
			lst = append(lst, v)
		}
		sort.Slice(lst, func(a, b int) bool { return lst[a] < lst[b] })
		out[i] = lst
	}
	return out
}

// FacesAround returns, for each vertex, the indices of faces incident to
// it. The support region of a wavelet coefficient is the union of the
// faces around its midpoint vertex (paper §VI-A).
func (m *Mesh) FacesAround() [][]int32 {
	out := make([][]int32, len(m.Verts))
	for fi, f := range m.Faces {
		for _, v := range f {
			out[v] = append(out[v], int32(fi))
		}
	}
	return out
}

// Bounds returns the axis-aligned bounding box of all vertices. An empty
// mesh yields an empty box.
func (m *Mesh) Bounds() geom.Rect3 {
	if len(m.Verts) == 0 {
		return geom.Rect3{Min: geom.V3(1, 1, 1), Max: geom.V3(0, 0, 0)}
	}
	b := geom.Rect3At(m.Verts[0])
	for _, v := range m.Verts[1:] {
		b = b.AddPoint(v)
	}
	return b
}

// Translate shifts every vertex by d in place and returns m.
func (m *Mesh) Translate(d geom.Vec3) *Mesh {
	for i := range m.Verts {
		m.Verts[i] = m.Verts[i].Add(d)
	}
	return m
}

// Scale multiplies every vertex by s (about the origin) in place and
// returns m.
func (m *Mesh) Scale(s float64) *Mesh {
	for i := range m.Verts {
		m.Verts[i] = m.Verts[i].Scale(s)
	}
	return m
}

// Validate checks structural invariants: face indices in range and no
// degenerate faces (repeated vertex indices). It returns the first problem
// found.
func (m *Mesh) Validate() error {
	n := int32(len(m.Verts))
	for fi, f := range m.Faces {
		for _, v := range f {
			if v < 0 || v >= n {
				return fmt.Errorf("mesh: face %d references vertex %d of %d", fi, v, n)
			}
		}
		if f[0] == f[1] || f[1] == f[2] || f[2] == f[0] {
			return fmt.Errorf("mesh: face %d is degenerate: %v", fi, f)
		}
	}
	return nil
}

// SurfaceArea returns the total area of all triangles.
func (m *Mesh) SurfaceArea() float64 {
	var area float64
	for _, f := range m.Faces {
		a, b, c := m.Verts[f[0]], m.Verts[f[1]], m.Verts[f[2]]
		area += b.Sub(a).Cross(c.Sub(a)).Len() / 2
	}
	return area
}
