// Package index implements the access methods of paper §VI over
// wavelet-decomposed 3D objects: the motion-aware index (an R*-tree over
// support-region MBBs extended with the coefficient-value dimension), the
// naive point index it is compared against (which must re-execute enlarged
// queries to pull in neighboring vertices), and the whole-object index the
// non-multiresolution baseline system of §VII-E uses. All three report
// node I/O per query.
package index

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/wavelet"
)

// Store is the server-side collection of decomposed objects. It assigns
// every coefficient a dense global id: the object's offset plus the
// coefficient's vertex id. (Decompose assigns vertex ids sequentially, so
// Coeffs[i].Vertex == i; Store relies on that.)
type Store struct {
	Objects   []*wavelet.Decomposition
	offsets   []int64
	total     int64
	neighbors [][][]int32 // final-mesh adjacency per object; built on demand
}

// NewStore builds a store over the given decompositions. Object ids must
// equal their slice positions; Decompose output is verified to satisfy the
// dense-vertex-id assumption.
func NewStore(objects []*wavelet.Decomposition) *Store {
	s := &Store{Objects: objects, offsets: make([]int64, len(objects))}
	for i, d := range objects {
		if d.Object != int32(i) {
			panic(fmt.Sprintf("index: object %d stored at position %d", d.Object, i))
		}
		for j := range d.Coeffs {
			if d.Coeffs[j].Vertex != int32(j) {
				panic(fmt.Sprintf("index: object %d coefficient %d has vertex %d",
					i, j, d.Coeffs[j].Vertex))
			}
		}
		s.offsets[i] = s.total
		s.total += int64(len(d.Coeffs))
	}
	s.neighbors = make([][][]int32, len(objects))
	return s
}

// NumObjects returns the number of stored objects.
func (s *Store) NumObjects() int { return len(s.Objects) }

// BaseVerts returns the vertex count of the shared base mesh (0 for an
// empty store). Clients need it to set up reconstructors.
func (s *Store) BaseVerts() int {
	if len(s.Objects) == 0 {
		return 0
	}
	return s.Objects[0].Base.NumVerts()
}

// NumCoeffs returns the total coefficient count across all objects.
func (s *Store) NumCoeffs() int64 { return s.total }

// SizeBytes returns the total serialized payload of the store — the
// "data set size" of the paper's experiments (20–80 MB).
func (s *Store) SizeBytes() int64 { return s.total * wavelet.WireBytes }

// ID returns the global id of a coefficient.
func (s *Store) ID(object, vertex int32) int64 {
	return s.offsets[object] + int64(vertex)
}

// Coeff resolves a global id. The store is always resident, so the
// error is always nil (see the CoefficientSource failure contract).
func (s *Store) Coeff(id int64) (*wavelet.Coefficient, error) {
	obj := s.objectOf(id)
	return &s.Objects[obj].Coeffs[id-s.offsets[obj]], nil
}

// objectOf finds the object owning a global id by binary search over the
// offsets. Out-of-range ids panic descriptively (an id can only come
// from this store's own ID/Search output, so a bad one is caller
// corruption — fail loudly rather than crash on a slice bound or, for a
// negative id on a multi-object store, silently resolve to object 0).
func (s *Store) objectOf(id int64) int {
	if id < 0 || id >= s.total {
		panic(fmt.Sprintf("index: coefficient id %d out of range [0, %d)", id, s.total))
	}
	lo, hi := 0, len(s.offsets)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.offsets[mid] <= id {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// EnsureNeighbors computes and caches the final-mesh vertex adjacency for
// every object. The naive index needs it; it must run before DropFinal.
// It mutates the store and must complete before concurrent readers
// (Neighbors, and therefore Naive.Search) start — NewNaive calls it at
// build time, which satisfies the Index concurrency contract.
func (s *Store) EnsureNeighbors() {
	for i, d := range s.Objects {
		if s.neighbors[i] != nil {
			continue
		}
		if d.Final == nil {
			panic(fmt.Sprintf("index: object %d final mesh dropped before EnsureNeighbors", i))
		}
		s.neighbors[i] = d.Final.VertexNeighbors()
	}
}

// Neighbors returns the final-mesh neighbor vertex ids of one coefficient.
// EnsureNeighbors must have run.
func (s *Store) Neighbors(object, vertex int32) []int32 {
	nb := s.neighbors[object]
	if nb == nil {
		panic("index: EnsureNeighbors not called")
	}
	return nb[vertex]
}

// DropFinals releases every object's refined mesh (after neighbor lists
// have been built if the naive index is in use).
func (s *Store) DropFinals() {
	for _, d := range s.Objects {
		d.DropFinal()
	}
}

// Bounds returns the bounding box of all objects.
func (s *Store) Bounds() geom.Rect3 {
	var b geom.Rect3
	empty := true
	for _, d := range s.Objects {
		if empty {
			b = d.Bounds()
			empty = false
		} else {
			b = b.Union(d.Bounds())
		}
	}
	return b
}

// Layout selects which dimensions the index rectangles use. The paper
// designs a 4D (x, y, z, w) index in §VI-B but evaluates a 3D (x, y, w)
// R*-tree in §VII-D; both are supported.
type Layout int

const (
	// XYW indexes ground-plane extent plus coefficient value (3D).
	XYW Layout = iota
	// XYZW indexes full 3D extent plus coefficient value (4D).
	XYZW
)

func (l Layout) String() string {
	if l == XYW {
		return "xyw"
	}
	return "xyzw"
}

// Dims returns the R-tree dimensionality of the layout.
func (l Layout) Dims() int {
	if l == XYW {
		return 3
	}
	return 4
}

// supportRect converts a coefficient's support-region MBB and value into
// an index rectangle.
func (l Layout) supportRect(c *wavelet.Coefficient) rtree.Rect {
	if l == XYW {
		return rtree.FromXYW(c.Support.XY(), c.Value, c.Value)
	}
	return rtree.From3D(c.Support, c.Value, c.Value)
}

// pointRect converts a coefficient's vertex position and value into a
// degenerate index rectangle (the naive storage format).
func (l Layout) pointRect(c *wavelet.Coefficient) rtree.Rect {
	if l == XYW {
		return rtree.Point(c.Pos.X, c.Pos.Y, c.Value)
	}
	return rtree.Point(c.Pos.X, c.Pos.Y, c.Pos.Z, c.Value)
}

// Query is the continuous window query of the paper: a region of interest
// and the value band [WMin, WMax] of the coefficients needed for the
// target resolution. WMin = 0, WMax = 1 retrieves the finest resolution;
// WMin = WMax = 1 the coarsest (§VI-B).
type Query struct {
	Region geom.Rect2 // ground-plane window
	ZMin   float64    // height band, used by the XYZW layout
	ZMax   float64
	WMin   float64
	WMax   float64
}

// queryRect converts the query into an index rectangle. ok is false for a
// provably empty query — an inverted region, value band, or (for XYZW)
// height band — which must not be searched: an inverted interval does not
// encode "no points" in rtree.Rect, and feeding one to Search can return
// spurious hits (intersects() only rejects on Lo > other.Hi per axis,
// which an inverted query rectangle can fail to trigger against items it
// does not contain). Degenerate-but-valid windows (a point-sized region,
// or WMin == WMax) are NOT empty: closed-interval intersection must still
// return every coefficient whose support contains the point.
func (l Layout) queryRect(q Query) (r rtree.Rect, ok bool) {
	if q.Region.Max.X < q.Region.Min.X || q.Region.Max.Y < q.Region.Min.Y || q.WMin > q.WMax {
		return r, false
	}
	if l == XYW {
		return rtree.FromXYW(q.Region, q.WMin, q.WMax), true
	}
	if q.ZMax < q.ZMin {
		return r, false
	}
	return rtree.From3D(geom.Prism(q.Region, q.ZMin, q.ZMax), q.WMin, q.WMax), true
}

// Index is a queryable access method over a CoefficientSource. Search
// returns the global coefficient ids satisfying the query and the number
// of index nodes (pages) read.
//
// Determinism contract: Search returns ids in ascending global-id order.
// Tree traversal order is an implementation detail (it differs between a
// bulk-loaded and an incrementally grown tree, and between shards of a
// partitioned index); sorting pins the response bytes of every access
// method to the query alone, so a sharded index is byte-identical to the
// serial motion-aware oracle and cross-implementation property tests can
// compare slices directly.
//
// Concurrency contract: after construction (and, for Naive, the
// EnsureNeighbors call its constructor performs), Search must be safe
// for any number of concurrent callers — every implementation in this
// package keeps its search state allocation-local and counts I/O with
// atomics. Mutating an index (e.g. MotionAware.Insert/Delete) is NOT
// safe concurrently with Search; wrap mutable indexes in a Concurrent
// to serve readers while background updates land.
type Index interface {
	Name() string
	Search(q Query) (ids []int64, io int64)
	Len() int
}
