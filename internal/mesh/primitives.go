package mesh

import (
	"math"

	"repro/internal/geom"
)

// Tetrahedron returns a regular tetrahedron inscribed in the unit sphere.
// With 4 vertices it is the smallest closed base mesh and is handy in
// tests.
func Tetrahedron() *Mesh {
	s := 1.0 / math.Sqrt(3)
	return &Mesh{
		Verts: []geom.Vec3{
			geom.V3(s, s, s),
			geom.V3(s, -s, -s),
			geom.V3(-s, s, -s),
			geom.V3(-s, -s, s),
		},
		Faces: [][3]int32{
			{0, 1, 2},
			{0, 3, 1},
			{0, 2, 3},
			{1, 3, 2},
		},
	}
}

// Octahedron returns a regular octahedron inscribed in the unit sphere.
// It is the default base mesh for generated objects: its 8 faces reach
// 8·4^6 = 32768 faces at level 6, giving the ~200 KB per-object payload
// the paper's dataset sizing implies.
func Octahedron() *Mesh {
	return &Mesh{
		Verts: []geom.Vec3{
			geom.V3(1, 0, 0),
			geom.V3(-1, 0, 0),
			geom.V3(0, 1, 0),
			geom.V3(0, -1, 0),
			geom.V3(0, 0, 1),
			geom.V3(0, 0, -1),
		},
		Faces: [][3]int32{
			{0, 2, 4}, {2, 1, 4}, {1, 3, 4}, {3, 0, 4},
			{2, 0, 5}, {1, 2, 5}, {3, 1, 5}, {0, 3, 5},
		},
	}
}

// Icosahedron returns a regular icosahedron inscribed in the unit sphere.
// Its 20 faces give the smoothest sphere approximations per level.
func Icosahedron() *Mesh {
	phi := (1 + math.Sqrt(5)) / 2
	n := math.Sqrt(1 + phi*phi)
	a, b := 1/n, phi/n
	return &Mesh{
		Verts: []geom.Vec3{
			geom.V3(-a, b, 0), geom.V3(a, b, 0), geom.V3(-a, -b, 0), geom.V3(a, -b, 0),
			geom.V3(0, -a, b), geom.V3(0, a, b), geom.V3(0, -a, -b), geom.V3(0, a, -b),
			geom.V3(b, 0, -a), geom.V3(b, 0, a), geom.V3(-b, 0, -a), geom.V3(-b, 0, a),
		},
		Faces: [][3]int32{
			{0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
			{1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
			{3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
			{4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
		},
	}
}

// Box returns a unit cube centered at the origin, each square face split
// into two triangles. Buildings use boxes stretched along z as their base
// mesh.
func Box() *Mesh {
	v := []geom.Vec3{
		geom.V3(-0.5, -0.5, -0.5), // 0
		geom.V3(0.5, -0.5, -0.5),  // 1
		geom.V3(0.5, 0.5, -0.5),   // 2
		geom.V3(-0.5, 0.5, -0.5),  // 3
		geom.V3(-0.5, -0.5, 0.5),  // 4
		geom.V3(0.5, -0.5, 0.5),   // 5
		geom.V3(0.5, 0.5, 0.5),    // 6
		geom.V3(-0.5, 0.5, 0.5),   // 7
	}
	return &Mesh{
		Verts: v,
		Faces: [][3]int32{
			{0, 2, 1}, {0, 3, 2}, // bottom (z = −0.5)
			{4, 5, 6}, {4, 6, 7}, // top
			{0, 1, 5}, {0, 5, 4}, // front (y = −0.5)
			{2, 3, 7}, {2, 7, 6}, // back
			{1, 2, 6}, {1, 6, 5}, // right (x = +0.5)
			{3, 0, 4}, {3, 4, 7}, // left
		},
	}
}
