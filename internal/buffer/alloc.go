// Package buffer implements the motion-aware buffer management of paper
// §V: the optimal two-way buffer split of equation (2), the recursive
// partitioning that extends it to k directions, prefetching managers
// (motion-aware and the naive equal-probability baseline), and the LRU
// cache used by the non-multiresolution baseline system. The managers
// track the two metrics of Figures 10–11: cache hit rate and data
// utilization.
package buffer

import (
	"fmt"
	"math"
)

// OptimalSplit returns n_opt per equation (2) of the paper: with a − 1
// blocks to distribute between a left region visited with probability pl
// and a right region with probability pr, the average residence time is
// maximized by placing n_opt − 1 blocks on the left:
//
//	n_opt = log( ((pl/pr)^a − 1) / (a·log(pl/pr)) ) / log(pl/pr)
//
// The pl = pr limit of the expression is a/2. Probabilities need not be
// normalized; only their ratio matters.
func OptimalSplit(pl, pr float64, a int) float64 {
	if a < 1 {
		panic("buffer: a must be ≥ 1")
	}
	switch {
	case pl <= 0 && pr <= 0:
		return float64(a) / 2
	case pl <= 0:
		return 1 // nothing on the left beyond the mandatory slot
	case pr <= 0:
		return float64(a) // everything on the left
	}
	r := pl / pr
	lr := math.Log(r)
	if math.Abs(lr) < 1e-9 {
		return float64(a) / 2
	}
	af := float64(a)
	// (r^a − 1)/(a·ln r) — compute in log space when r^a overflows.
	num := math.Pow(r, af) - 1
	var inner float64
	if math.IsInf(num, 1) {
		// log(r^a / (a ln r)) = a·ln r − ln(a·ln r)
		inner = (af*lr - math.Log(af*lr)) / lr
		return clampSplit(inner, af)
	}
	inner = math.Log(num/(af*lr)) / lr
	return clampSplit(inner, af)
}

func clampSplit(n, a float64) float64 {
	if n < 1 {
		return 1
	}
	if n > a {
		return a
	}
	return n
}

// SplitBlocks divides `total` buffer blocks between two directions with
// probabilities pl and pr using equation (2), returning the left share.
// The mapping follows the paper's usage: a − 1 = total, left gets
// n_opt − 1 blocks (rounded), right the rest.
func SplitBlocks(pl, pr float64, total int) (left, right int) {
	if total <= 0 {
		return 0, 0
	}
	n := OptimalSplit(pl, pr, total+1)
	left = int(math.Round(n - 1))
	if left < 0 {
		left = 0
	}
	if left > total {
		left = total
	}
	return left, total - left
}

// Allocate distributes `total` buffer blocks across k directions with the
// given visit probabilities by recursive halving (paper §V-A): split the
// directions into two groups, divide the blocks between the groups with
// equation (2) using the groups' summed probabilities, and recurse until
// every group is a single direction. The returned shares are non-negative
// and sum to total.
func Allocate(probs []float64, total int) []int {
	if len(probs) == 0 {
		panic("buffer: no directions")
	}
	out := make([]int, len(probs))
	allocate(probs, total, out)
	return out
}

func allocate(probs []float64, total int, out []int) {
	if len(probs) == 1 {
		out[0] = total
		return
	}
	mid := len(probs) / 2
	var pl, pr float64
	for _, p := range probs[:mid] {
		pl += p
	}
	for _, p := range probs[mid:] {
		pr += p
	}
	left, right := SplitBlocks(pl, pr, total)
	allocate(probs[:mid], left, out[:mid])
	allocate(probs[mid:], right, out[mid:])
}

// ResidenceTime returns the expected number of steps a ±1 random walk with
// step probabilities pl (left) and pr = 1 − pl (right) stays inside a
// corridor with `left` free blocks to the left and `right` to the right.
// It evaluates the quality of a split and backs the ablation that
// different direction orderings "only slightly affect the average
// residence time". Computed by solving the standard first-passage system
// E(x) = 1 + pl·E(x−1) + pr·E(x+1) on the finite corridor.
func ResidenceTime(pl float64, left, right int) float64 {
	if pl < 0 || pl > 1 {
		panic(fmt.Sprintf("buffer: pl = %v out of [0,1]", pl))
	}
	n := left + right + 1 // states: −left .. +right
	if n == 1 {
		return 1
	}
	pr := 1 - pl
	// Tridiagonal solve by Thomas algorithm for E_i, absorbing outside.
	a := make([]float64, n) // sub-diagonal (coeff of E_{i−1}): −pl
	b := make([]float64, n) // diagonal: 1
	c := make([]float64, n) // super-diagonal: −pr
	d := make([]float64, n) // rhs: 1
	for i := 0; i < n; i++ {
		b[i] = 1
		d[i] = 1
		if i > 0 {
			a[i] = -pl
		}
		if i < n-1 {
			c[i] = -pr
		}
	}
	for i := 1; i < n; i++ {
		m := a[i] / b[i-1]
		b[i] -= m * c[i-1]
		d[i] -= m * d[i-1]
	}
	e := make([]float64, n)
	e[n-1] = d[n-1] / b[n-1]
	for i := n - 2; i >= 0; i-- {
		e[i] = (d[i] - c[i]*e[i+1]) / b[i]
	}
	return e[left] // expected steps starting at the client's block
}
