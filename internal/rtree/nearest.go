package rtree

import (
	"container/heap"
	"math"
)

// Neighbor is one result of a nearest-neighbor query.
type Neighbor struct {
	Rect Rect
	Data int64
	// Dist is the minimum distance from the query point to the rectangle
	// (0 if the point lies inside it).
	Dist float64
}

// Nearest returns the k items closest to the query point (in minimum
// rectangle distance, ascending), using best-first branch-and-bound
// traversal. Fewer than k items are returned when the tree is smaller.
// The traversal's node reads are added to the tree's Stats. The paper
// only needs window queries, but continuous-query systems pair them with
// kNN ("retrieve the nearest landmark"), so the access method supports
// both.
func (t *Tree) Nearest(point []float64, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	dims := t.cfg.Dims
	if len(point) < dims {
		panic("rtree: query point has too few coordinates")
	}

	pq := &distHeap{}
	heap.Init(pq)
	heap.Push(pq, &distEntry{node: t.root, dist: 0})
	var io int64

	out := make([]Neighbor, 0, k)
	for pq.Len() > 0 {
		e := heap.Pop(pq).(*distEntry)
		// Best-first: once the closest frontier entry is farther than the
		// kth found item, nothing better remains.
		if len(out) == k && e.dist > out[k-1].Dist {
			break
		}
		if e.node != nil {
			io++
			n := e.node
			for i := range n.entries {
				d := minDist(point, &n.entries[i].rect, dims)
				if len(out) == k && d > out[k-1].Dist {
					continue
				}
				if n.leaf {
					heap.Push(pq, &distEntry{leafRect: n.entries[i].rect, data: n.entries[i].data, dist: d, isItem: true})
				} else {
					heap.Push(pq, &distEntry{node: n.entries[i].child, dist: d})
				}
			}
			continue
		}
		// An item surfaced: by best-first order it is the next nearest.
		out = insertNeighbor(out, Neighbor{Rect: e.leafRect, Data: e.data, Dist: e.dist}, k)
	}
	t.nodesRead.Add(io)
	t.queries.Add(1)
	return out
}

func insertNeighbor(out []Neighbor, nb Neighbor, k int) []Neighbor {
	if len(out) < k {
		out = append(out, nb)
	} else if nb.Dist < out[k-1].Dist {
		out[k-1] = nb
	} else {
		return out
	}
	// Bubble into place (out is small and nearly sorted).
	for i := len(out) - 1; i > 0 && out[i].Dist < out[i-1].Dist; i-- {
		out[i], out[i-1] = out[i-1], out[i]
	}
	return out
}

// minDist returns the minimum Euclidean distance from a point to a
// rectangle over the first dims dimensions.
func minDist(p []float64, r *Rect, dims int) float64 {
	var sum float64
	for d := 0; d < dims; d++ {
		var gap float64
		if p[d] < r.Lo[d] {
			gap = r.Lo[d] - p[d]
		} else if p[d] > r.Hi[d] {
			gap = p[d] - r.Hi[d]
		}
		sum += gap * gap
	}
	return math.Sqrt(sum)
}

type distEntry struct {
	node     *node // nil for items
	leafRect Rect
	data     int64
	dist     float64
	isItem   bool
	index    int
}

type distHeap []*distEntry

func (h distHeap) Len() int { return len(h) }
func (h distHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	// Items before nodes at equal distance so results surface promptly.
	return h[i].isItem && !h[j].isItem
}
func (h distHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *distHeap) Push(x interface{}) {
	e := x.(*distEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// TreeStats summarizes the tree's structure for ablation reporting.
type TreeStats struct {
	Nodes      int
	Leaves     int
	Height     int
	AvgFanout  float64 // mean entries per node
	LeafFill   float64 // mean leaf fill relative to MaxEntries
	TotalItems int
}

// StructureStats walks the tree and reports occupancy statistics.
func (t *Tree) StructureStats() TreeStats {
	s := TreeStats{Height: t.height, TotalItems: t.size}
	var entries, leafEntries int
	var walk func(n *node)
	walk = func(n *node) {
		s.Nodes++
		entries += len(n.entries)
		if n.leaf {
			s.Leaves++
			leafEntries += len(n.entries)
			return
		}
		for i := range n.entries {
			walk(n.entries[i].child)
		}
	}
	walk(t.root)
	if s.Nodes > 0 {
		s.AvgFanout = float64(entries) / float64(s.Nodes)
	}
	if s.Leaves > 0 {
		s.LeafFill = float64(leafEntries) / float64(s.Leaves*t.cfg.MaxEntries)
	}
	return s
}
