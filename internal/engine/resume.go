package engine

import (
	"sync"
	"time"

	"repro/internal/retrieval"
)

// Resume-cache defaults a Registry gives each scene; override with
// Registry.SetResumeCache.
const (
	DefaultResumeCapacity = 1024
	DefaultResumeTTL      = 2 * time.Minute
)

// ResumeEntry is the state of a recently closed session, held so a
// reconnecting client can continue incremental retrieval instead of
// re-fetching its whole window. Seq counts the responses sent over the
// session's lifetime; LastIDs are the deliveries of response Seq, the
// candidates a resume handshake may roll back when the client never
// applied that final frame.
type ResumeEntry struct {
	Session *retrieval.Session
	Seq     int64
	LastIDs []int64
	// Restored marks an entry rebuilt from the durable session journal
	// after a restart; the wire server counts the resume that consumes
	// it (stats.RecordResumeRestored) and clears the flag.
	Restored bool
	expires  time.Time
}

// ResumeCache is a bounded TTL cache of closed sessions keyed by token.
// Each scene owns one: a token minted while a client was attached to
// scene A can only resume scene A's delivered-set. Put and Take are
// mutex-guarded; both run off the request hot path (connection teardown
// and handshake respectively).
type ResumeCache struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration
	entries  map[uint64]*ResumeEntry
	order    []uint64 // insertion (≈ close-time) order for eviction
	// journal, when attached, durably mirrors the cache: parks are
	// appended on Put, tombstones on Take and eviction. Journal calls
	// run outside the cache mutex (they fsync).
	journal *SessionJournal
	scene   string
}

// attachJournal mirrors this cache into a durable session journal (nil
// detaches). The scene name keys the journal's records so a restore
// re-parks each session in the right scene.
func (c *ResumeCache) attachJournal(j *SessionJournal, scene string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = j
	c.scene = scene
}

// NewResumeCache creates a cache holding at most capacity sessions
// (0 disables resumption) for at most ttl.
func NewResumeCache(capacity int, ttl time.Duration) *ResumeCache {
	return &ResumeCache{
		capacity: capacity,
		ttl:      ttl,
		entries:  make(map[uint64]*ResumeEntry),
	}
}

// Put stashes a closed session. With capacity 0 (or a zero token) the
// entry is dropped.
func (c *ResumeCache) Put(token uint64, e *ResumeEntry) {
	if c == nil || c.capacity <= 0 || token == 0 {
		return
	}
	e.expires = time.Now().Add(c.ttl)
	c.mu.Lock()
	// Evict expired entries first, then the oldest live one if still full.
	// order may hold tokens already consumed by Take; skip them.
	var evicted []uint64
	for len(c.order) > 0 {
		t := c.order[0]
		old, ok := c.entries[t]
		if ok && time.Now().Before(old.expires) && len(c.entries) < c.capacity {
			break
		}
		c.order = c.order[1:]
		if ok {
			evicted = append(evicted, t)
		}
		delete(c.entries, t)
	}
	c.entries[token] = e
	c.order = append(c.order, token)
	j, scene := c.journal, c.scene
	c.mu.Unlock()
	if j != nil {
		for _, t := range evicted {
			j.RecordTake(t)
		}
		j.RecordPark(token, scene, e)
	}
}

// putRestored re-parks a journal-recovered session under its original
// token and original expiry, without journaling it again (it is already
// the journal's live state). Restores never evict: a full cache drops
// the restore instead. Reports whether the entry was parked.
func (c *ResumeCache) putRestored(token uint64, e *ResumeEntry, expires time.Time) bool {
	if c == nil || c.capacity <= 0 || token == 0 || time.Now().After(expires) {
		return false
	}
	e.expires = expires
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.capacity {
		return false
	}
	if _, dup := c.entries[token]; dup {
		return false
	}
	c.entries[token] = e
	c.order = append(c.order, token)
	return true
}

// Take removes and returns the session for token, if present and fresh.
func (c *ResumeCache) Take(token uint64) (*ResumeEntry, bool) {
	if c == nil || token == 0 {
		return nil, false
	}
	c.mu.Lock()
	e, ok := c.entries[token]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	delete(c.entries, token)
	fresh := !time.Now().After(e.expires)
	j := c.journal
	c.mu.Unlock()
	if j != nil {
		// The token is consumed either way — resumed or expired — so the
		// journal tombstones it either way.
		j.RecordTake(token)
	}
	if !fresh {
		return nil, false
	}
	return e, true
}

// Len reports the number of cached sessions (expired entries included
// until evicted).
func (c *ResumeCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
