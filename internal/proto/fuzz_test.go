package proto

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/retrieval"
)

// FuzzReader throws arbitrary bytes at every message decoder. The
// invariant is totality: decoders must return (value, error) without
// panicking or over-allocating, for any input. Run with
// `go test -fuzz=FuzzReader ./internal/proto` to explore; the seed corpus
// runs as part of the normal test suite.
func FuzzReader(f *testing.F) {
	// Seeds: one valid message of each kind plus junk.
	var hello bytes.Buffer
	NewWriter(&hello).WriteHello(Hello{Version: Version, Objects: 2, Levels: 3, BaseVerts: 6})
	f.Add(hello.Bytes())

	var req bytes.Buffer
	NewWriter(&req).WriteRequest(Request{Speed: 0.5})
	f.Add(req.Bytes())

	var resp bytes.Buffer
	NewWriter(&resp).WriteResponse(Response{IO: 3, Coeffs: make([]Coeff, 2)})
	f.Add(resp.Bytes())

	var errMsg bytes.Buffer
	NewWriter(&errMsg).WriteError("nope")
	f.Add(errMsg.Bytes())

	var resume bytes.Buffer
	NewWriter(&resume).WriteResume(Resume{Token: 7, AppliedSeq: 3})
	f.Add(resume.Bytes())

	var resumeOK bytes.Buffer
	NewWriter(&resumeOK).WriteResumeOK(ResumeOK{Seq: 3, Delivered: 99})
	f.Add(resumeOK.Bytes())

	var resumeFail bytes.Buffer
	NewWriter(&resumeFail).WriteResumeFail("gone")
	f.Add(resumeFail.Bytes())

	var scene bytes.Buffer
	NewWriter(&scene).WriteSceneSelect("city")
	f.Add(scene.Bytes())

	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		tag, err := r.ReadTag()
		if err != nil {
			return
		}
		switch tag {
		case TagHello:
			r.ReadHello()
		case TagRequest:
			if req, err := r.ReadRequest(); err == nil && len(req.Subs) > MaxSubQueries {
				t.Fatalf("oversized request decoded: %d", len(req.Subs))
			}
		case TagResponse:
			if resp, err := r.ReadResponse(); err == nil && len(resp.Coeffs) > MaxCoeffs {
				t.Fatalf("oversized response decoded: %d", len(resp.Coeffs))
			}
		case TagError:
			r.ReadError()
		case TagResume:
			if res, err := r.ReadResume(); err == nil && res.AppliedSeq < 0 {
				t.Fatalf("negative applied seq decoded: %d", res.AppliedSeq)
			}
		case TagResumeOK:
			r.ReadResumeOK()
		case TagResumeFail:
			if msg, err := r.ReadResumeFail(); err == nil && len(msg) > MaxWireErrorLen {
				t.Fatalf("oversized resume-fail reason decoded: %d bytes", len(msg))
			}
		case TagScene:
			if scene, err := r.ReadSceneSelect(); err == nil {
				if err := engine.ValidateSceneName(scene); err != nil {
					t.Fatalf("invalid scene name decoded: %v", err)
				}
			}
		}
	})
}

// frameBody strips the tag byte from a written frame, giving the body a
// per-message fuzzer consumes after its own ReadTag.
func frameBody(f *testing.F, write func(*Writer) error) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := write(NewWriter(&buf)); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()[1:]
}

// FuzzReadResponse targets the response decoder: the largest frame, the
// incremental coefficient allocation, and the CRC trailer. The decoder
// must never panic, never allocate unboundedly, and must reject any
// body whose checksum does not match.
func FuzzReadResponse(f *testing.F) {
	f.Add(frameBody(f, func(w *Writer) error {
		return w.WriteResponse(Response{IO: 3, Seq: 1, Coeffs: make([]Coeff, 2)})
	}))
	f.Add(frameBody(f, func(w *Writer) error {
		return w.WriteResponse(Response{})
	}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		if resp, err := r.ReadResponse(); err == nil && len(resp.Coeffs) > MaxCoeffs {
			t.Fatalf("oversized response decoded: %d", len(resp.Coeffs))
		}
	})
}

// FuzzReadHello targets the handshake decoder — the one frame a client
// parses before any trust is established.
func FuzzReadHello(f *testing.F) {
	f.Add(frameBody(f, func(w *Writer) error {
		return w.WriteHello(Hello{Version: Version, Objects: 2, Levels: 3, BaseVerts: 6, Token: 42})
	}))
	f.Add(frameBody(f, func(w *Writer) error {
		return w.WriteHello(Hello{Version: Version, Objects: 2, Levels: 3, BaseVerts: 6,
			Token: 42, Scene: "city-01"})
	}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		if h, err := r.ReadHello(); err == nil {
			if h.Version != Version {
				t.Fatalf("foreign version %d accepted", h.Version)
			}
			if len(h.Scene) > engine.MaxSceneName {
				t.Fatalf("oversized scene name decoded: %d bytes", len(h.Scene))
			}
		}
	})
}

// FuzzReadSceneSelect targets the scene-select decoder: a checksummed
// frame that binds a session to a data set, parsed before the session
// has served anything. A decode that succeeds must yield a valid,
// bounded scene name.
func FuzzReadSceneSelect(f *testing.F) {
	f.Add(frameBody(f, func(w *Writer) error {
		return w.WriteSceneSelect("city")
	}))
	f.Add(frameBody(f, func(w *Writer) error {
		return w.WriteSceneSelect("a")
	}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		if scene, err := r.ReadSceneSelect(); err == nil {
			if err := engine.ValidateSceneName(scene); err != nil {
				t.Fatalf("invalid scene name decoded: %v", err)
			}
		}
	})
}

// FuzzReadResume targets the three resume-handshake decoders (request,
// ok, fail) — checksummed frames parsed while a session credential is
// on the line.
func FuzzReadResume(f *testing.F) {
	f.Add(uint8(0), frameBody(f, func(w *Writer) error {
		return w.WriteResume(Resume{Token: 7, AppliedSeq: 3})
	}))
	f.Add(uint8(1), frameBody(f, func(w *Writer) error {
		return w.WriteResumeOK(ResumeOK{Seq: 3, Delivered: 99})
	}))
	f.Add(uint8(2), frameBody(f, func(w *Writer) error {
		return w.WriteResumeFail("gone")
	}))
	f.Add(uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, which uint8, data []byte) {
		r := NewReader(bytes.NewReader(data))
		switch which % 3 {
		case 0:
			if res, err := r.ReadResume(); err == nil && res.AppliedSeq < 0 {
				t.Fatalf("negative applied seq decoded: %d", res.AppliedSeq)
			}
		case 1:
			r.ReadResumeOK()
		case 2:
			if msg, err := r.ReadResumeFail(); err == nil && len(msg) > MaxWireErrorLen {
				t.Fatalf("oversized resume-fail reason decoded: %d bytes", len(msg))
			}
		}
	})
}

// FuzzCRCRejectsFlips checks the integrity guarantee end to end: any
// single-bit flip anywhere in a checksummed frame must be rejected.
func FuzzCRCRejectsFlips(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteResponse(Response{IO: 7, Seq: 2, Coeffs: []Coeff{{Object: 1, Vertex: 9, Value: 0.5}}}); err != nil {
		f.Fatal(err)
	}
	frame := buf.Bytes()
	f.Add(1, uint8(0))
	f.Add(len(frame)-1, uint8(7))
	f.Fuzz(func(t *testing.T, pos int, bit uint8) {
		if pos < 1 || pos >= len(frame) { // tag byte is not checksummed
			return
		}
		mut := append([]byte(nil), frame...)
		mut[pos] ^= 1 << (bit % 8)
		r := NewReader(bytes.NewReader(mut))
		if tag, err := r.ReadTag(); err != nil || tag != TagResponse {
			return // flipped the length header into an invalid shape: fine
		}
		if _, err := r.ReadResponse(); err == nil {
			t.Fatalf("bit flip at byte %d bit %d went undetected", pos, bit%8)
		}
	})
}

// FuzzBudget targets the version-4 budgeted-frame decoders: the budget
// field ahead of the request body, the truncation metadata between the
// response header and its records, and the CRC trailers covering both.
// A decode that succeeds must yield bounded, non-negative fields; and —
// like every checksummed frame — any single-bit flip in a valid
// budgeted frame must be rejected.
func FuzzBudget(f *testing.F) {
	subs := []retrieval.SubQuery{{Region: geom.R2(1, 2, 3, 4), WMin: 0.2, WMax: 0.9}}
	var reqFrame, respFrame bytes.Buffer
	if err := NewWriter(&reqFrame).WriteBudgetRequest(Request{Speed: 0.5, Subs: subs, MaxBytes: 4096}); err != nil {
		f.Fatal(err)
	}
	payload := EncodeResponsePayload(nil, []Coeff{{Object: 1, Vertex: 9, Value: 0.5}})
	if err := NewWriter(&respFrame).WriteBudgetResponsePayload(1, 7, 2, 3, 4096, payload); err != nil {
		f.Fatal(err)
	}
	valid := [2][]byte{reqFrame.Bytes(), respFrame.Bytes()}

	f.Add(uint8(0), reqFrame.Bytes()[1:], 0, uint8(0))
	f.Add(uint8(0), frameBody(f, func(w *Writer) error {
		return w.WriteBudgetRequest(Request{Speed: 0.5, Subs: subs}) // unlimited budget
	}), 1, uint8(7))
	f.Add(uint8(1), respFrame.Bytes()[1:], 9, uint8(3))
	f.Add(uint8(1), frameBody(f, func(w *Writer) error {
		return w.WriteBudgetResponsePayload(0, 0, 1, 12, 4096, nil) // all withheld
	}), 21, uint8(0))
	f.Add(uint8(0), []byte{}, 0, uint8(0))
	f.Add(uint8(1), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, 0, uint8(0))

	f.Fuzz(func(t *testing.T, which uint8, data []byte, pos int, bit uint8) {
		// Totality and bounds on arbitrary bodies.
		r := NewReader(bytes.NewReader(data))
		switch which % 2 {
		case 0:
			if req, err := r.ReadBudgetRequest(); err == nil {
				if req.MaxBytes < 0 {
					t.Fatalf("negative budget decoded: %d", req.MaxBytes)
				}
				if len(req.Subs) > MaxSubQueries {
					t.Fatalf("oversized request decoded: %d", len(req.Subs))
				}
			}
		case 1:
			var resp Response
			if err := r.ReadBudgetResponseInto(&resp); err == nil {
				if resp.Dropped < 0 || resp.Budget < 0 {
					t.Fatalf("negative truncation metadata decoded: %d/%d", resp.Dropped, resp.Budget)
				}
				if len(resp.Coeffs) > MaxCoeffs {
					t.Fatalf("oversized response decoded: %d", len(resp.Coeffs))
				}
			}
		}

		// CRC integrity: a single-bit flip anywhere past the tag of a
		// valid budgeted frame must not decode.
		frame := valid[which%2]
		if pos < 1 || pos >= len(frame) {
			return
		}
		mut := append([]byte(nil), frame...)
		mut[pos] ^= 1 << (bit % 8)
		r = NewReader(bytes.NewReader(mut))
		tag, err := r.ReadTag()
		if err != nil {
			return
		}
		switch tag {
		case TagBudgetRequest:
			if _, err := r.ReadBudgetRequest(); err == nil {
				t.Fatalf("request bit flip at byte %d bit %d went undetected", pos, bit%8)
			}
		case TagBudgetResponse:
			var resp Response
			if err := r.ReadBudgetResponseInto(&resp); err == nil {
				t.Fatalf("response bit flip at byte %d bit %d went undetected", pos, bit%8)
			}
		}
	})
}
