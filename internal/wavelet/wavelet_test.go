package wavelet

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
)

func sphereDecomp(t *testing.T, J int) *Decomposition {
	t.Helper()
	s := mesh.Sphere{Radius: 1}
	base := mesh.Octahedron() // vertices already on the unit sphere
	return Decompose(1, base, s, J)
}

func buildingDecomp(t *testing.T, seed int64, J int) (*Decomposition, *mesh.StarSurface) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := mesh.RandomBuilding(rng, geom.V2(0, 0), mesh.DefaultBuildingSpec())
	return Decompose(2, mesh.BaseMeshFor(s), s, J), s
}

func TestDecomposeCounts(t *testing.T) {
	d := sphereDecomp(t, 3)
	// Octahedron: 6 base vertices; splits per level 12, 48, 192.
	want := 6 + 12 + 48 + 192
	if d.NumCoeffs() != want {
		t.Fatalf("NumCoeffs = %d want %d", d.NumCoeffs(), want)
	}
	if d.SizeBytes() != want*WireBytes {
		t.Errorf("SizeBytes = %d", d.SizeBytes())
	}
	if len(d.LevelOf(BaseLevel)) != 6 {
		t.Errorf("base level size = %d", len(d.LevelOf(BaseLevel)))
	}
	if len(d.LevelOf(0)) != 12 || len(d.LevelOf(1)) != 48 || len(d.LevelOf(2)) != 192 {
		t.Errorf("level sizes = %d/%d/%d",
			len(d.LevelOf(0)), len(d.LevelOf(1)), len(d.LevelOf(2)))
	}
}

func TestDecomposeLevelOrdering(t *testing.T) {
	d := sphereDecomp(t, 3)
	for i := 1; i < len(d.Coeffs); i++ {
		if d.Coeffs[i].Level < d.Coeffs[i-1].Level {
			t.Fatalf("coefficients out of level order at %d", i)
		}
	}
}

func TestValuesNormalized(t *testing.T) {
	d, _ := buildingDecomp(t, 5, 4)
	var sawOne bool
	for i := range d.Coeffs {
		c := &d.Coeffs[i]
		if c.Value < 0 || c.Value > 1 {
			t.Fatalf("value %v out of range for %v", c.Value, c)
		}
		if c.Level == BaseLevel && c.Value != 1.0 {
			t.Fatalf("base coefficient value %v != 1.0", c.Value)
		}
		if c.Value == 1.0 && c.Level != BaseLevel {
			sawOne = true
		}
	}
	if !sawOne {
		t.Error("no regular coefficient normalized to exactly 1.0")
	}
}

func TestValueDecaysWithLevel(t *testing.T) {
	d, _ := buildingDecomp(t, 9, 5)
	avg := map[int8]float64{}
	cnt := map[int8]int{}
	for i := range d.Coeffs {
		c := &d.Coeffs[i]
		if c.Level == BaseLevel {
			continue
		}
		avg[c.Level] += c.Value
		cnt[c.Level]++
	}
	for j := int8(1); j < 5; j++ {
		a0 := avg[j-1] / float64(cnt[j-1])
		a1 := avg[j] / float64(cnt[j])
		if a1 >= a0 {
			t.Errorf("average value did not decay: level %d = %v, level %d = %v", j-1, a0, j, a1)
		}
	}
}

func TestSupportRegionsContainVertexAndParents(t *testing.T) {
	d := sphereDecomp(t, 3)
	for i := range d.Coeffs {
		c := &d.Coeffs[i]
		if !c.Support.Contains(c.Pos) {
			t.Fatalf("support %v misses its own vertex %v", c.Support, c.Pos)
		}
		if c.Level == BaseLevel {
			continue
		}
		if c.Support.Volume() == 0 && c.Support.XY().Area() == 0 {
			t.Fatalf("degenerate support for %v", c)
		}
	}
}

func TestSupportSubsetProperty(t *testing.T) {
	// §VI-A: if R2 ⊆ R1, the region affected by a support region inside R2
	// is contained in the region affected inside R1.
	d, _ := buildingDecomp(t, 13, 3)
	rng := rand.New(rand.NewSource(4))
	b := d.Bounds()
	for trial := 0; trial < 200; trial++ {
		outer := randBoxIn(rng, b)
		inner := shrink(rng, outer)
		c := &d.Coeffs[rng.Intn(len(d.Coeffs))]
		if err := SupportSubsetProperty(outer, inner, c.Support); err != nil {
			t.Fatal(err)
		}
	}
}

func randBoxIn(rng *rand.Rand, b geom.Rect3) geom.Rect3 {
	rx := func(lo, hi float64) (float64, float64) {
		a := lo + rng.Float64()*(hi-lo)
		c := lo + rng.Float64()*(hi-lo)
		if a > c {
			a, c = c, a
		}
		return a, c
	}
	x0, x1 := rx(b.Min.X, b.Max.X)
	y0, y1 := rx(b.Min.Y, b.Max.Y)
	z0, z1 := rx(b.Min.Z, b.Max.Z)
	return geom.R3(x0, y0, z0, x1, y1, z1)
}

func shrink(rng *rand.Rand, b geom.Rect3) geom.Rect3 {
	c := b.Center()
	f := rng.Float64()
	return geom.Rect3{
		Min: c.Add(b.Min.Sub(c).Scale(f)),
		Max: c.Add(b.Max.Sub(c).Scale(f)),
	}
}

func TestFullReconstructionExact(t *testing.T) {
	d, _ := buildingDecomp(t, 21, 4)
	r := NewReconstructor(d.Base, d.Bounds().Center(), d.J)
	r.ApplyAll(d.Coeffs)
	if e := r.Error(d.Final); e > 1e-9 {
		t.Fatalf("full reconstruction error = %v", e)
	}
	m := r.Mesh()
	if m.NumVerts() != d.Final.NumVerts() || m.NumFaces() != d.Final.NumFaces() {
		t.Fatalf("topology mismatch: %d/%d vs %d/%d",
			m.NumVerts(), m.NumFaces(), d.Final.NumVerts(), d.Final.NumFaces())
	}
}

func TestProgressiveErrorMonotone(t *testing.T) {
	// Applying coefficients in descending-value order must never increase
	// the reconstruction error when applied level by level, and must end at
	// (near) zero. This is the invariant that makes "retrieve w ≥ s"
	// sensible.
	d, _ := buildingDecomp(t, 33, 4)
	coeffs := make([]Coefficient, len(d.Coeffs))
	copy(coeffs, d.Coeffs)
	sort.SliceStable(coeffs, func(i, j int) bool { return coeffs[i].Value > coeffs[j].Value })

	r := NewReconstructor(d.Base, d.Bounds().Center(), d.J)
	prev := r.Error(d.Final)
	chunk := len(coeffs) / 8
	for off := 0; off < len(coeffs); off += chunk {
		end := off + chunk
		if end > len(coeffs) {
			end = len(coeffs)
		}
		r.ApplyAll(coeffs[off:end])
		e := r.Error(d.Final)
		if e > prev+1e-9 {
			t.Fatalf("error increased from %v to %v after %d coefficients", prev, e, end)
		}
		prev = e
	}
	if prev > 1e-9 {
		t.Fatalf("final error = %v", prev)
	}
}

func TestResolutionCutoffReducesError(t *testing.T) {
	d, _ := buildingDecomp(t, 44, 4)
	errAt := func(w float64) float64 {
		r := NewReconstructor(d.Base, d.Bounds().Center(), d.J)
		for i := range d.Coeffs {
			if d.Coeffs[i].Value >= w {
				r.Apply(d.Coeffs[i])
			}
		}
		return r.Error(d.Final)
	}
	e1, e05, e0 := errAt(1.0), errAt(0.5), errAt(0.0)
	if !(e1 >= e05 && e05 >= e0) {
		t.Fatalf("errors not monotone in resolution: %v %v %v", e1, e05, e0)
	}
	if e0 > 1e-9 {
		t.Fatalf("resolution 0 should be exact, error %v", e0)
	}
	if e1 <= 0 {
		t.Fatal("coarsest reconstruction should have positive error")
	}
}

func TestCountAtLeast(t *testing.T) {
	d := sphereDecomp(t, 2)
	all := d.NumCoeffs()
	if got := d.CountAtLeast(0); got != all {
		t.Errorf("CountAtLeast(0) = %d want %d", got, all)
	}
	base := len(d.LevelOf(BaseLevel))
	if got := d.CountAtLeast(1.0); got < base {
		t.Errorf("CountAtLeast(1) = %d, below base count %d", got, base)
	}
	if got := d.CountAtLeast(0.5); got > all || got < base {
		t.Errorf("CountAtLeast(0.5) = %d outside [%d,%d]", got, base, all)
	}
	// Monotone in w.
	prev := all + 1
	for _, w := range []float64{0, 0.25, 0.5, 0.75, 1} {
		n := d.CountAtLeast(w)
		if n > prev {
			t.Fatalf("CountAtLeast not monotone at %v", w)
		}
		prev = n
	}
}

func TestApplyIdempotent(t *testing.T) {
	d := sphereDecomp(t, 2)
	r1 := NewReconstructor(d.Base, geom.V3(0, 0, 0), d.J)
	r2 := NewReconstructor(d.Base, geom.V3(0, 0, 0), d.J)
	r1.ApplyAll(d.Coeffs)
	r2.ApplyAll(d.Coeffs)
	r2.ApplyAll(d.Coeffs) // duplicate application
	m1, m2 := r1.Mesh(), r2.Mesh()
	for i := range m1.Verts {
		if m1.Verts[i] != m2.Verts[i] {
			t.Fatalf("duplicate application changed vertex %d", i)
		}
	}
	if r1.Count() != r2.Count() {
		t.Errorf("counts differ: %d vs %d", r1.Count(), r2.Count())
	}
}

func TestReconstructorErrorPanicsOnMismatch(t *testing.T) {
	d := sphereDecomp(t, 2)
	r := NewReconstructor(d.Base, geom.V3(0, 0, 0), 1) // wrong level count
	defer func() {
		if recover() == nil {
			t.Error("expected panic on topology mismatch")
		}
	}()
	r.Error(d.Final)
}

func TestDecomposeAssignsObjectID(t *testing.T) {
	d := sphereDecomp(t, 1)
	for i := range d.Coeffs {
		if d.Coeffs[i].Object != 1 {
			t.Fatalf("coefficient %d has object %d", i, d.Coeffs[i].Object)
		}
		k := d.Coeffs[i].Key()
		if k.Object != 1 || k.Vertex != d.Coeffs[i].Vertex {
			t.Fatalf("bad key %+v", k)
		}
	}
}

func TestBoundsCoverAllCoefficients(t *testing.T) {
	d, _ := buildingDecomp(t, 55, 3)
	b := d.Bounds()
	for i := range d.Coeffs {
		if !b.Contains(d.Coeffs[i].Pos) {
			t.Fatalf("coefficient position %v outside bounds %v", d.Coeffs[i].Pos, b)
		}
	}
}

func TestSphereCoefficientMagnitudes(t *testing.T) {
	// For the octahedron→sphere refinement, every level's displacements are
	// strictly positive (midpoints lie inside the sphere) and shrink by
	// roughly 4x per level (second-order surface approximation).
	d := sphereDecomp(t, 4)
	var prevAvg float64 = math.Inf(1)
	for j := int8(0); j < 4; j++ {
		var sum float64
		lvl := d.LevelOf(j)
		for i := range lvl {
			if l := lvl[i].Delta.Len(); l <= 0 {
				t.Fatalf("level %d coefficient %d has zero displacement", j, i)
			}
			sum += lvl[i].Delta.Len()
		}
		avg := sum / float64(len(lvl))
		if avg >= prevAvg {
			t.Fatalf("level %d avg %v did not shrink", j, avg)
		}
		if j > 0 && prevAvg/avg < 2.5 {
			t.Errorf("level %d decay ratio %v, want ≳ 4", j, prevAvg/avg)
		}
		prevAvg = avg
	}
}

// TestLevelBandsDisjointAndOrdered pins the per-level banding contract:
// level j's values live in ((J−1−j)/J, (J−j)/J] and coarser levels sit in
// strictly higher bands.
func TestLevelBandsDisjointAndOrdered(t *testing.T) {
	d, _ := buildingDecomp(t, 77, 5)
	J := float64(d.J)
	for j := int8(0); int(j) < d.J; j++ {
		lo := (J - 1 - float64(j)) / J
		hi := (J - float64(j)) / J
		for i, c := range d.LevelOf(j) {
			if c.Value <= lo-1e-12 || c.Value > hi+1e-12 {
				t.Fatalf("level %d coefficient %d value %v outside (%v,%v]",
					j, i, c.Value, lo, hi)
			}
		}
	}
}

// TestBandMaxHitsTop verifies each level's largest-magnitude coefficient
// maps exactly to the band's upper bound.
func TestBandMaxHitsTop(t *testing.T) {
	d, _ := buildingDecomp(t, 78, 4)
	J := float64(d.J)
	for j := int8(0); int(j) < d.J; j++ {
		hi := (J - float64(j)) / J
		var best float64
		for _, c := range d.LevelOf(j) {
			if c.Value > best {
				best = c.Value
			}
		}
		if math.Abs(best-hi) > 1e-12 {
			t.Errorf("level %d max value %v, want %v", j, best, hi)
		}
	}
}
