package engine

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"repro/internal/persist"
	"repro/internal/retrieval"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file is the engine side of a cluster drain: the hooks a
// controller composes to move one scene between backends by
// checkpoint-ship-replay. SaveScene/LoadScene move the data,
// ExportSessions/ImportSessions move the parked resume state, and
// RemoveScene retires the source copy (tombstoning its journal entries
// so the shipped sessions have exactly one durable home).

// SaveScene writes one scene's durable checkpoint to dir (created if
// missing) and returns the file path. Unlike SaveAll it is an error to
// name a scene without a dataset — a drain that cannot ship the data
// must fail loudly, not silently relocate an empty scene.
func (r *Registry) SaveScene(dir, name string, st *stats.Stats) (string, error) {
	r.mu.RLock()
	sc, ok := r.scenes[name]
	ordinal := 0
	for i, n := range r.order {
		if n == name {
			ordinal = i
		}
	}
	r.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("engine: unknown scene %q", name)
	}
	if sc.Dataset == nil {
		return "", fmt.Errorf("engine: scene %q has no dataset to checkpoint", name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var payload bytes.Buffer
	if err := sc.Dataset.Save(&payload); err != nil {
		return "", fmt.Errorf("engine: checkpoint scene %q: %w", name, err)
	}
	meta := checkpointMeta{ordinal: ordinal, levels: sc.Levels, shards: sc.Shards, name: name}
	path := CheckpointPath(dir, name)
	written, err := persist.WriteFileAtomic(path, func(w *persist.Writer) error {
		if err := w.WriteRecord(encodeCheckpointMeta(meta)); err != nil {
			return err
		}
		return w.WriteRecord(payload.Bytes())
	})
	if err != nil {
		return "", fmt.Errorf("engine: checkpoint scene %q: %w", name, err)
	}
	st.RecordCheckpoint(written)
	return path, nil
}

// LoadScene builds and registers one scene from a shipped checkpoint
// file. Where LoadAll salvages what it can from a damaged directory,
// LoadScene is strict — a drain adopting a scene must get exactly the
// records the source wrote, so any torn tail, quarantined record, or
// short file is an error.
func (r *Registry) LoadScene(path string, st *stats.Stats) (*Scene, error) {
	recs, rec, err := persist.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("engine: load scene %s: %w", path, err)
	}
	if rec.TailTruncated > 0 || rec.Quarantined > 0 || len(recs) < 2 {
		return nil, fmt.Errorf("engine: load scene %s: checkpoint damaged (%d records, %d quarantined, torn tail %v)",
			path, len(recs), rec.Quarantined, rec.TailTruncated > 0)
	}
	meta, err := decodeCheckpointMeta(recs[0])
	if err != nil {
		return nil, fmt.Errorf("engine: load scene %s: %w", path, err)
	}
	d, err := workload.Load(bytes.NewReader(recs[1]), false)
	if err != nil {
		return nil, fmt.Errorf("engine: load scene %s: %w", path, err)
	}
	return r.Build(SceneConfig{
		Name:    meta.name,
		Dataset: d,
		Levels:  meta.levels,
		Shards:  meta.shards,
		Stats:   st,
	})
}

// RemoveScene unregisters a scene and purges its resume cache,
// tombstoning every parked session in the attached journal — after a
// drain ships the sessions, the target's journal is their one durable
// home and a source restart must not resurrect stale copies. Returns
// the number of parked sessions purged. Removing the default scene
// promotes the next registered scene.
func (r *Registry) RemoveScene(name string) (int, error) {
	r.mu.Lock()
	sc, ok := r.scenes[name]
	if !ok {
		r.mu.Unlock()
		return 0, fmt.Errorf("engine: unknown scene %q", name)
	}
	delete(r.scenes, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
	return sc.Resume.Purge(), nil
}

// ExportSessions encodes every live parked session of a scene in the
// session journal's park format — the wire a drain ships resume state
// over. Expired entries are skipped.
func (r *Registry) ExportSessions(scene string) ([][]byte, error) {
	sc, ok := r.Get(scene)
	if !ok {
		return nil, fmt.Errorf("engine: unknown scene %q", scene)
	}
	return sc.Resume.exportParked(scene), nil
}

// ImportSessions re-parks shipped sessions into a scene this registry
// serves: each payload is decoded, its session rebuilt against the
// local scene's server, parked under its original token and expiry,
// flagged Restored (the first resume served from it is counted like a
// crash-recovery restore), and journaled locally when a session journal
// is attached. A payload for the wrong scene is an error — shipping
// must never graft one scene's delivered-set onto another. Returns the
// number imported (full cache or already-expired entries are dropped,
// not errors).
func (r *Registry) ImportSessions(scene string, payloads [][]byte) (int, error) {
	sc, ok := r.Get(scene)
	if !ok {
		return 0, fmt.Errorf("engine: unknown scene %q", scene)
	}
	r.mu.RLock()
	j := r.journal
	r.mu.RUnlock()
	n := 0
	for _, p := range payloads {
		park, err := decodePark(p)
		if err != nil {
			return n, fmt.Errorf("engine: import session: %w", err)
		}
		if park.scene != scene {
			return n, fmt.Errorf("engine: shipped session belongs to scene %q, not %q", park.scene, scene)
		}
		e := &ResumeEntry{
			Session:  retrieval.RestoreSession(sc.Server, park.delivered),
			Seq:      park.seq,
			LastIDs:  park.lastIDs,
			Restored: true,
		}
		if sc.Resume.putRestored(park.token, e, time.Unix(0, park.expires)) {
			j.RecordPark(park.token, scene, e)
			n++
		}
	}
	return n, nil
}

// exportParked encodes the cache's live entries in park format.
func (c *ResumeCache) exportParked(scene string) [][]byte {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, 0, len(c.entries))
	now := time.Now()
	for token, e := range c.entries {
		if now.After(e.expires) {
			continue
		}
		out = append(out, encodePark(token, scene, e))
	}
	return out
}

// Purge removes every parked session, tombstoning each in the attached
// journal, and returns the count removed.
func (c *ResumeCache) Purge() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	tokens := make([]uint64, 0, len(c.entries))
	for t := range c.entries {
		tokens = append(tokens, t)
	}
	c.entries = make(map[uint64]*ResumeEntry)
	c.order = c.order[:0]
	j := c.journal
	c.mu.Unlock()
	if j != nil {
		for _, t := range tokens {
			j.RecordTake(t)
		}
	}
	return len(tokens)
}
