package proto

import (
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faultdisk"
	"repro/internal/index"
	"repro/internal/persist"
	"repro/internal/retrieval"
	"repro/internal/rtree"
	"repro/internal/workload"
)

// TestDiskFaultIsolation is the `-race` storage-fault regression: with
// one permanently corrupt page in the paged store, a session whose
// frames touch only healthy pages keeps serving byte-identically to an
// in-memory oracle, concurrently with a session whose wholesale frames
// hit the corrupt page and observe withholding — and no frame on either
// session ever errors, because a bad sector degrades coverage, it does
// not kill the server.
func TestDiskFaultIsolation(t *testing.T) {
	d := workload.Generate(workload.Spec{NumObjects: 8, Levels: 3, Seed: 5})
	dir := t.TempDir()
	segPath := filepath.Join(dir, "coeffs.seg")
	if err := index.BuildSegment(segPath, d.Store, d.Spec.Levels, 4096); err != nil {
		t.Fatalf("BuildSegment: %v", err)
	}

	f, err := os.Open(segPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	fd := faultdisk.New(f, faultdisk.Config{}) // no transient weather: the bad sector is the test
	seg, err := persist.NewSegment(fd, fi.Size())
	if err != nil {
		t.Fatal(err)
	}
	ps, err := index.NewPagedSegment(seg, index.PagedConfig{CacheBytes: 4 * 4096, RetryMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	// The faulty server; the index build scans the segment before the
	// corruption lands, so every coefficient is indexed.
	idx := index.NewMotionAware(ps, index.XYW, rtree.Config{})
	srv := NewServer(retrieval.NewServer(ps, idx), ps.Levels(), t.Logf)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()

	// Oracle server over the in-memory store.
	oidx := index.NewMotionAware(d.Store, index.XYW, rtree.Config{})
	osrv := NewServer(retrieval.NewServer(d.Store, oidx), d.Spec.Levels, t.Logf)
	olis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go osrv.Serve(olis)
	defer osrv.Close()

	// Corrupt the last page. Its coefficients (the tail of the id
	// space) are what the wholesale session must lose.
	corruptPage := seg.NumPages() - 1
	fd.SetCorrupt(seg.PageOffset(corruptPage), int64(seg.PageSize()))
	perPage := int64(seg.RecordsPerPage())
	corruptLo := int64(corruptPage) * perPage
	corruptByObject := map[int32]int{}
	for id := corruptLo; id < ps.NumCoeffs(); id++ {
		corruptByObject[index.MustCoeff(d.Store, id).Object]++
	}

	// The healthy session's territory: the first object's footprint,
	// provably clear of every corrupt-page coefficient position (the
	// workload seed is fixed, so this holds deterministically).
	healthyObj := index.MustCoeff(d.Store, 0).Object
	healthyRect := d.Store.Objects[healthyObj].Bounds().XY().Expand(5)
	if corruptByObject[healthyObj] != 0 {
		t.Fatalf("object %d spans the corrupt page; pick another seed", healthyObj)
	}
	for id := corruptLo; id < ps.NumCoeffs(); id++ {
		if p := index.MustCoeff(d.Store, id).Pos; healthyRect.Contains(p.XY()) {
			t.Fatalf("corrupt-page coefficient %d sits inside the healthy window; pick another seed", id)
		}
	}

	space := d.Store.Bounds().XY()
	var wg sync.WaitGroup

	// Session 1: healthy-page frames, lockstep against the oracle.
	wg.Add(1)
	go func() {
		defer wg.Done()
		healthy, err := Dial(lis.Addr().String(), nil)
		if err != nil {
			t.Errorf("healthy dial: %v", err)
			return
		}
		defer healthy.Close()
		oracle, err := Dial(olis.Addr().String(), nil)
		if err != nil {
			t.Errorf("oracle dial: %v", err)
			return
		}
		defer oracle.Close()
		speeds := []float64{0.8, 0.5, 0.25, 0.1, 0}
		for i, speed := range speeds {
			nh, err := healthy.Frame(healthyRect, speed)
			if err != nil {
				t.Errorf("healthy frame %d: %v", i, err)
				return
			}
			no, err := oracle.Frame(healthyRect, speed)
			if err != nil {
				t.Errorf("oracle frame %d: %v", i, err)
				return
			}
			if nh != no {
				t.Errorf("frame %d: healthy session delivered %d, oracle %d — fault leaked into healthy pages", i, nh, no)
				return
			}
		}
		om, ok1 := oracle.Mesh(healthyObj)
		hm, ok2 := healthy.Mesh(healthyObj)
		if !ok1 || !ok2 || om.NumVerts() != hm.NumVerts() {
			t.Errorf("healthy object %d reconstruction missing", healthyObj)
			return
		}
		for v := range om.Verts {
			if om.Verts[v] != hm.Verts[v] {
				t.Errorf("healthy object %d vertex %d not byte-identical under a concurrent disk fault", healthyObj, v)
				return
			}
		}
	}()

	// Session 2: wholesale frames that must hit the corrupt page,
	// observe withholding, and never error.
	wg.Add(1)
	go func() {
		defer wg.Done()
		full, err := Dial(lis.Addr().String(), nil)
		if err != nil {
			t.Errorf("wholesale dial: %v", err)
			return
		}
		defer full.Close()
		for i := 0; i < 5; i++ {
			if _, err := full.Frame(space, 0); err != nil {
				t.Errorf("wholesale frame %d: %v", i, err)
				return
			}
		}
		for obj, short := range corruptByObject {
			want := len(d.Store.Objects[obj].Coeffs) - short
			if got := full.CoeffCount(obj); got != want {
				t.Errorf("object %d: wholesale session has %d coefficients, want %d (%d withheld)",
					obj, got, want, short)
			}
		}
	}()

	wg.Wait()
	if st := ps.PagerStats(); st.Quarantined != 1 || st.FaultErrors == 0 {
		t.Fatalf("pager stats = %+v, want the corrupt page quarantined", st)
	}
}
