package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func writeRecords(t *testing.T, path string, payloads ...[]byte) {
	t.Helper()
	if _, err := WriteFileAtomic(path, func(w *Writer) error {
		for _, p := range payloads {
			if err := w.WriteRecord(p); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
}

func TestRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.ckpt")
	want := [][]byte{[]byte("alpha"), {}, []byte("gamma gamma gamma")}
	writeRecords(t, path, want...)

	recs, rec, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if rec.Quarantined != 0 || rec.TailTruncated != 0 {
		t.Fatalf("clean file reported damage: %+v", rec)
	}
	if rec.Records != int64(len(want)) || len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
}

func TestMissingFileRecoversEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.ckpt")
	recs, rec, err := RecoverFile(path)
	if err != nil || len(recs) != 0 || rec != (Recovery{}) {
		t.Fatalf("missing file: recs=%d rec=%+v err=%v", len(recs), rec, err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.ckpt")
	writeRecords(t, path, []byte("first"), []byte("second"))
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Append a partial record: a full length+CRC header promising 100
	// bytes, followed by only 3.
	torn := make([]byte, 8, 11)
	binary.LittleEndian.PutUint32(torn[0:4], 100)
	binary.LittleEndian.PutUint32(torn[4:8], 0xdeadbeef)
	torn = append(torn, 'x', 'y', 'z')
	if err := os.WriteFile(path, append(append([]byte{}, intact...), torn...), 0o644); err != nil {
		t.Fatal(err)
	}

	recs, rec, err := RecoverFile(path)
	if err != nil {
		t.Fatalf("RecoverFile: %v", err)
	}
	if rec.Records != 2 || rec.TailTruncated != 1 || rec.Quarantined != 0 {
		t.Fatalf("recovery = %+v, want 2 records, 1 truncation", rec)
	}
	if rec.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("TruncatedBytes = %d, want %d", rec.TruncatedBytes, len(torn))
	}
	if len(recs) != 2 || string(recs[1]) != "second" {
		t.Fatalf("salvaged %q", recs)
	}

	// The repair must restore the pre-tear file byte for byte, and a
	// second recovery must see no damage.
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repaired, intact) {
		t.Fatalf("repaired file differs from intact prefix: %d vs %d bytes", len(repaired), len(intact))
	}
	_, rec2, err := RecoverFile(path)
	if err != nil || rec2.TailTruncated != 0 || rec2.Records != 2 {
		t.Fatalf("second recovery = %+v err=%v, want clean", rec2, err)
	}
}

func TestCorruptRecordQuarantined(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	writeRecords(t, path, []byte("good-one"), []byte("will-rot"), []byte("good-two"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the middle record's payload.
	mid := HeaderBytes + 8 + len("good-one") + 8 + 2
	data[mid] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, rec, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if rec.Records != 2 || rec.Quarantined != 1 || rec.TailTruncated != 0 {
		t.Fatalf("recovery = %+v, want 2 good + 1 quarantined", rec)
	}
	if string(recs[0]) != "good-one" || string(recs[1]) != "good-two" {
		t.Fatalf("salvaged %q", recs)
	}
}

func TestImplausibleLengthIsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "len.ckpt")
	writeRecords(t, path, []byte("keep"))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxRecord+1)
	binary.LittleEndian.PutUint32(hdr[4:8], 0)
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// Pile real-looking bytes behind it: they must not be interpreted.
	if _, err := f.Write(bytes.Repeat([]byte{0xAA}, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, rec, err := RecoverFile(path)
	if err != nil {
		t.Fatalf("RecoverFile: %v", err)
	}
	if rec.Records != 1 || rec.TailTruncated != 1 || rec.Quarantined != 0 {
		t.Fatalf("recovery = %+v, want 1 record + truncation", rec)
	}
	if len(recs) != 1 || string(recs[0]) != "keep" {
		t.Fatalf("salvaged %q", recs)
	}
}

func TestEmptyAndHeaderOnlyFiles(t *testing.T) {
	dir := t.TempDir()

	empty := filepath.Join(dir, "empty.ckpt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, rec, err := RecoverFile(empty)
	if err != nil || len(recs) != 0 || rec.TailTruncated != 1 {
		t.Fatalf("empty file: recs=%d rec=%+v err=%v", len(recs), rec, err)
	}

	headerOnly := filepath.Join(dir, "hdr.ckpt")
	writeRecords(t, headerOnly)
	recs, rec, err = RecoverFile(headerOnly)
	if err != nil || len(recs) != 0 || rec.TailTruncated != 0 {
		t.Fatalf("header-only file: recs=%d rec=%+v err=%v", len(recs), rec, err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "magic.ckpt")
	if err := os.WriteFile(path, []byte("NOTAPERSISTFILE!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RecoverFile(path); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestWriterFailpointTearsMidRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	// Fail 4 bytes into the next record's header.
	w.SetFailpoint(4)
	if err := w.WriteRecord([]byte("doomed")); !errors.Is(err, ErrKilled) {
		t.Fatalf("failpoint write err = %v, want ErrKilled", err)
	}
	if err := w.WriteRecord([]byte("after")); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-failpoint write err = %v, want ErrKilled", err)
	}

	recs, rec, _, err := Scan(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 1 || rec.TailTruncated != 1 {
		t.Fatalf("scan after failpoint = %+v, want 1 record + torn tail", rec)
	}
	if string(recs[0]) != "committed" {
		t.Fatalf("salvaged %q", recs[0])
	}
	if rec.TruncatedBytes != 4 {
		t.Fatalf("TruncatedBytes = %d, want 4", rec.TruncatedBytes)
	}
}

func TestAtomicWriteFailureLeavesOldFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keep.ckpt")
	writeRecords(t, path, []byte("original"))
	boom := errors.New("boom")
	if _, err := WriteFileAtomic(path, func(w *Writer) error {
		w.WriteRecord([]byte("partial new content"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	recs, rec, err := ReadFile(path)
	if err != nil || rec.Records != 1 || string(recs[0]) != "original" {
		t.Fatalf("old file damaged: recs=%q rec=%+v err=%v", recs, rec, err)
	}
	// No temp litter.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestWriteBytesAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.json")
	if err := WriteBytesAtomic(path, []byte("{}\n")); err != nil {
		t.Fatal(err)
	}
	if err := WriteBytesAtomic(path, []byte("{\"v\":2}\n")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "{\"v\":2}\n" {
		t.Fatalf("got %q err=%v", got, err)
	}
}

func TestJournalAppendRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.journal")
	j, recs, rec, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || rec != (Recovery{}) {
		t.Fatalf("fresh journal: recs=%d rec=%+v", len(recs), rec)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append([]byte(fmt.Sprintf("entry-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, rec, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec.Records != 5 || len(recs) != 5 {
		t.Fatalf("reopen: rec=%+v recs=%d", rec, len(recs))
	}
	for i, r := range recs {
		if string(r) != fmt.Sprintf("entry-%d", i) {
			t.Fatalf("record %d = %q", i, r)
		}
	}
	// Appends continue after recovery.
	if err := j2.Append([]byte("entry-5")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs, _, err = OpenJournal(path)
	if err != nil || len(recs) != 6 {
		t.Fatalf("after continued append: recs=%d err=%v", len(recs), err)
	}
}

func TestJournalFailpointLeavesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.journal")
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	j.SetFailpoint(5)
	if err := j.Append([]byte("torn-away")); !errors.Is(err, ErrKilled) {
		t.Fatalf("failpoint append err = %v", err)
	}
	if !j.Killed() {
		t.Fatal("journal should be dead after failpoint")
	}
	// Dead journal swallows appends silently.
	if err := j.Append([]byte("ghost")); err != nil {
		t.Fatalf("post-kill append err = %v", err)
	}
	j.Close()

	_, recs, rec, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 1 || rec.TailTruncated != 1 {
		t.Fatalf("recovery = %+v, want 1 record + torn tail", rec)
	}
	if string(recs[0]) != "durable" {
		t.Fatalf("salvaged %q", recs[0])
	}
}

func TestJournalKillFreezesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kill.journal")
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}
	sizeAtKill := j.Size()
	j.Kill()
	if err := j.Append([]byte("after-kill")); err != nil {
		t.Fatal(err)
	}
	if err := j.Rewrite([][]byte{[]byte("compacted")}); err != nil {
		t.Fatal(err)
	}
	if got := j.Size(); got != sizeAtKill {
		t.Fatalf("size moved after kill: %d -> %d", sizeAtKill, got)
	}
	j.Close()
	_, recs, _, err := OpenJournal(path)
	if err != nil || len(recs) != 1 || string(recs[0]) != "before" {
		t.Fatalf("killed journal on disk: recs=%q err=%v", recs, err)
	}
}

func TestJournalRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.journal")
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := j.Append([]byte(fmt.Sprintf("bulk-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := j.Size()
	if err := j.Rewrite([][]byte{[]byte("survivor-a"), []byte("survivor-b")}); err != nil {
		t.Fatal(err)
	}
	if after := j.Size(); after >= before {
		t.Fatalf("compaction did not shrink: %d -> %d", before, after)
	}
	// The swapped handle must still accept appends.
	if err := j.Append([]byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs, rec, err := OpenJournal(path)
	if err != nil || rec.Records != 3 {
		t.Fatalf("after compaction: rec=%+v err=%v", rec, err)
	}
	if string(recs[0]) != "survivor-a" || string(recs[2]) != "post-compact" {
		t.Fatalf("records %q", recs)
	}
}

func TestScanSizeMismatchClamped(t *testing.T) {
	// A size smaller than reality must not produce negative counts.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.WriteRecord([]byte("x"))
	buf.WriteByte(0xFF) // torn byte
	_, rec, _, err := Scan(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TruncatedBytes < 0 {
		t.Fatalf("negative TruncatedBytes: %+v", rec)
	}
}

func TestRecoveryAdd(t *testing.T) {
	a := Recovery{Records: 1, Quarantined: 2, TailTruncated: 1, TruncatedBytes: 10}
	a.Add(Recovery{Records: 4, Quarantined: 1, TruncatedBytes: 5})
	want := Recovery{Records: 5, Quarantined: 3, TailTruncated: 1, TruncatedBytes: 15}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

func TestRecordTooLarge(t *testing.T) {
	w, err := NewWriter(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if _, err := EncodeRecord(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversized EncodeRecord accepted")
	}
}
