package index

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/rtree"
	"repro/internal/stats"
)

// ShardedConfig parameterizes a Sharded index.
type ShardedConfig struct {
	// Shards is the number of grid cells K the scene's XY bounds are
	// partitioned into (≤ 0 → 1). The grid is the factor pair r×c = K
	// closest to square, so K = 7 degrades to a 1×7 slab partition.
	Shards int
	// Workers bounds the pool fanning one Search out across shards
	// (0 → min(GOMAXPROCS, 8); 1 runs shard searches serially).
	Workers int
	// Tree configures the per-shard R*-trees. Zero Dims is filled in from
	// the layout, as everywhere else in this package.
	Tree rtree.Config
}

// shard is one grid cell's index: its own R*-tree guarded by its own
// RWMutex, so a mutation drains readers of this cell only while searches
// over the rest of the scene proceed untouched.
type shard struct {
	mu   sync.RWMutex
	tree *rtree.Tree
	// bounds is the conservative content MBR: the union of every rectangle
	// ever inserted. It grows on Insert and deliberately never shrinks on
	// Delete, so the overlap test can only err toward searching a shard —
	// never toward skipping one that holds a matching coefficient.
	bounds   rtree.Rect
	nonempty bool
}

// grow widens the shard's content MBR to cover r. Callers hold the write
// lock.
func (s *shard) grow(r rtree.Rect, dims int) {
	if !s.nonempty {
		s.bounds = r
		s.nonempty = true
		return
	}
	for d := 0; d < dims; d++ {
		if r.Lo[d] < s.bounds.Lo[d] {
			s.bounds.Lo[d] = r.Lo[d]
		}
		if r.Hi[d] > s.bounds.Hi[d] {
			s.bounds.Hi[d] = r.Hi[d]
		}
	}
}

// overlaps reports whether the query rectangle can intersect anything in
// this shard. Callers hold at least the read lock.
func (s *shard) overlaps(q *rtree.Rect, dims int) bool {
	if !s.nonempty {
		return false
	}
	for d := 0; d < dims; d++ {
		if q.Lo[d] > s.bounds.Hi[d] || s.bounds.Lo[d] > q.Hi[d] {
			return false
		}
	}
	return true
}

// Sharded is the spatially partitioned motion-aware index: the scene's XY
// bounds are cut into a K-cell grid, each cell holding its own R*-tree
// over the coefficients whose vertex position falls inside it, guarded by
// its own RWMutex. Search fans sub-queries out to the overlapping shards
// on a bounded worker pool and merges the hits into ascending id order,
// so responses are byte-identical to the serial MotionAware oracle
// (support regions may straddle cell borders; the per-shard content MBRs
// keep the fan-out exact). Insert/Delete lock only the owning shard, so
// a background update drains readers of one grid cell instead of the
// world — the scaling property the coarse Concurrent wrapper lacks.
//
// Concurrency: Search/Len are safe concurrently with Insert/Delete and
// with each other. A multi-shard Search is atomic per shard, not across
// shards (exactly as a batch of Concurrent.Search calls would be); tests
// comparing against a serial oracle must quiesce writers first.
type Sharded struct {
	src    CoefficientSource
	layout Layout
	shards []*shard
	rows   int
	cols   int
	// Grid geometry over the source's XY bounds at build time.
	x0, y0 float64
	dx, dy float64

	workers int
	st      *stats.Stats

	// epoch versions the index contents, seqlock-style: every mutation
	// bumps it once before touching a shard and once after, so it is odd
	// while any mutation is in flight and strictly larger after one
	// completes. Result caches validate entries against it — see Epoch.
	epoch atomic.Uint64
}

// NewSharded partitions the source into cfg.Shards grid cells and bulk
// loads one R*-tree per cell. K = 1 is the degenerate single-shard case:
// the same tree a MotionAware build produces, behind one RWMutex — an
// in-family replacement for Concurrent(MotionAware).
func NewSharded(src CoefficientSource, layout Layout, cfg ShardedConfig) *Sharded {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	tcfg := cfg.Tree
	if tcfg.Dims == 0 {
		tcfg = rtree.DefaultConfig(layout.Dims())
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	rows, cols := gridShape(cfg.Shards)
	b := src.Bounds().XY()
	s := &Sharded{
		src:     src,
		layout:  layout,
		shards:  make([]*shard, cfg.Shards),
		rows:    rows,
		cols:    cols,
		x0:      b.Min.X,
		y0:      b.Min.Y,
		dx:      b.Width() / float64(cols),
		dy:      b.Height() / float64(rows),
		workers: workers,
	}
	dims := tcfg.Dims
	total := src.NumCoeffs()
	items := make([][]rtree.Item, cfg.Shards)
	for id := int64(0); id < total; id++ {
		c, err := src.Coeff(id)
		if err != nil {
			// An unreadable page at build time leaves its coefficients
			// unindexed (withheld) rather than aborting the build.
			continue
		}
		k := s.shardOf(c.Pos.X, c.Pos.Y)
		items[k] = append(items[k], rtree.Item{Rect: layout.supportRect(c), Data: id})
	}
	for k := range s.shards {
		sh := &shard{tree: rtree.BulkLoad(tcfg, items[k])}
		for i := range items[k] {
			sh.grow(items[k][i].Rect, dims)
		}
		s.shards[k] = sh
	}
	return s
}

// gridShape returns the factor pair rows×cols = k with the smallest
// aspect skew, cols ≥ rows (7 → 1×7, 16 → 4×4).
func gridShape(k int) (rows, cols int) {
	rows = 1
	for r := 1; r*r <= k; r++ {
		if k%r == 0 {
			rows = r
		}
	}
	return rows, k / rows
}

// shardOf maps a vertex position to its owning shard. Positions on (or
// outside) the partition's edge clamp into the border cells, so every
// coefficient — including ones appearing beyond the build-time bounds
// after a mutation — has exactly one owner.
func (s *Sharded) shardOf(x, y float64) int {
	col, row := 0, 0
	if s.dx > 0 {
		col = int((x - s.x0) / s.dx)
	}
	if s.dy > 0 {
		row = int((y - s.y0) / s.dy)
	}
	if col < 0 {
		col = 0
	}
	if col >= s.cols {
		col = s.cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= s.rows {
		row = s.rows - 1
	}
	return row*s.cols + col
}

// SetStats wires the per-shard search counters into a collector (nil
// disables recording). Call before serving; not safe mid-flight.
func (s *Sharded) SetStats(st *stats.Stats) {
	s.st = st
	st.EnsureShards(len(s.shards))
}

// SetParallelism bounds the shard fan-out pool; 1 (or less) searches the
// shards serially on the calling goroutine. Parallelism never changes
// results: the merge sorts into ascending id order either way. Not safe
// to call while searches are in flight.
func (s *Sharded) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// NumShards returns the shard count K.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Name identifies the access method in experiment output.
func (s *Sharded) Name() string {
	return fmt.Sprintf("sharded(%dx%d %s)", s.rows, s.cols, "motion-aware("+s.layout.String()+")")
}

// Len returns the number of indexed coefficients across all shards.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.tree.Len()
		sh.mu.RUnlock()
	}
	return n
}

// ShardLens returns the per-shard coefficient counts (observability).
func (s *Sharded) ShardLens() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		out[i] = sh.tree.Len()
		sh.mu.RUnlock()
	}
	return out
}

// Search answers the window query by fanning it out to every shard whose
// content MBR overlaps the query rectangle, each searched under that
// shard's read lock on the bounded worker pool, then merging the hits
// into ascending id order (the Index determinism contract — byte-
// identical to the serial MotionAware oracle). The reported I/O is the
// sum over the searched shards' node reads. Search allocates its result
// fresh; hot callers use SearchInto with a retained Cursor instead.
func (s *Sharded) Search(q Query) ([]int64, int64) {
	var cur Cursor
	ids, io := s.SearchInto(q, nil, &cur)
	if len(ids) == 0 {
		return nil, io
	}
	return ids, io
}

// SearchInto is the allocation-free Search: matching ids are appended to
// buf in ascending order using the cursor's retained scratch (candidate
// list, per-shard slabs, traversal stacks), so a warmed-up serial search
// (parallelism 1, or a single overlapping shard) performs no allocations
// per query; the parallel fan-out still pays only its goroutine spawns.
// The result set, order, and I/O are identical to Search. Safe for any
// number of concurrent callers with distinct cursors and buffers,
// including concurrently with Insert/Delete.
func (s *Sharded) SearchInto(q Query, buf []int64, cur *Cursor) ([]int64, int64) {
	qr, ok := s.layout.queryRect(q)
	if !ok {
		return buf, 0
	}
	dims := s.layout.Dims()
	// Pre-filter under read locks: the overlap test is a few float
	// compares, not worth a pool dispatch per non-overlapping shard.
	cand := cur.cand[:0]
	for i, sh := range s.shards {
		sh.mu.RLock()
		hit := sh.overlaps(&qr, dims)
		sh.mu.RUnlock()
		if hit {
			cand = append(cand, i)
		}
	}
	cur.cand = cand
	start := len(buf)
	var io int64
	workers := s.workers
	if workers > len(cand) {
		workers = len(cand)
	}
	if workers <= 1 {
		for _, i := range cand {
			sh := s.shards[i]
			sh.mu.RLock()
			var sio int64
			buf, sio = sh.tree.SearchInto(qr, &cur.rt, buf)
			sh.mu.RUnlock()
			s.st.RecordShard(i, sio)
			io += sio
		}
	} else {
		// Kept out of line so the goroutine closure doesn't force qr and
		// cand to the heap on the (allocation-free) serial path above.
		buf, io = s.searchParallel(qr, workers, buf, cur)
	}
	slices.Sort(buf[start:])
	return buf, io
}

// searchParallel fans cur.cand out over a spawn-per-call worker pool,
// each worker draining shards off a shared atomic counter into its own
// cursorHit slab with its own traversal stack, then concatenates the
// slabs in shard order (the subsequent sort makes order moot, but
// deterministic accounting is easier to reason about).
func (s *Sharded) searchParallel(qr rtree.Rect, workers int, buf []int64, cur *Cursor) ([]int64, int64) {
	cand := cur.cand
	for len(cur.hits) < len(cand) {
		cur.hits = append(cur.hits, cursorHit{})
	}
	for len(cur.rts) < workers {
		cur.rts = append(cur.rts, rtree.Cursor{})
	}
	hits := cur.hits[:len(cand)]
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(rc *rtree.Cursor) {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(cand) {
					return
				}
				i := cand[j]
				sh := s.shards[i]
				sh.mu.RLock()
				ids, sio := sh.tree.SearchInto(qr, rc, hits[j].ids[:0])
				sh.mu.RUnlock()
				hits[j].ids = ids
				hits[j].io = sio
				s.st.RecordShard(i, sio)
			}
		}(&cur.rts[w])
	}
	wg.Wait()
	var io int64
	for j := range hits {
		buf = append(buf, hits[j].ids...)
		io += hits[j].io
	}
	return buf, io
}

// Epoch returns the current content version — even when quiescent, odd
// while some mutation is in flight. A cached search result stamped with
// an even epoch E is valid exactly while Epoch() == E: any completed
// mutation since then has moved the counter past E.
func (s *Sharded) Epoch() uint64 { return s.epoch.Load() }

// Insert indexes the source coefficient with the given global id,
// locking only its owning shard: readers and writers of every other grid
// cell proceed undisturbed.
func (s *Sharded) Insert(id int64) {
	c, err := s.src.Coeff(id)
	if err != nil {
		return // unreadable page: the coefficient stays unindexed
	}
	r := s.layout.supportRect(c)
	sh := s.shards[s.shardOf(c.Pos.X, c.Pos.Y)]
	s.epoch.Add(1)
	sh.mu.Lock()
	sh.tree.Insert(r, id)
	sh.grow(r, s.layout.Dims())
	sh.mu.Unlock()
	s.epoch.Add(1)
}

// Delete removes the coefficient with the given global id from its
// owning shard, reporting whether it was present. As with MotionAware,
// the coefficient's current source state must match its indexed
// rectangle (delete before mutating the source); the owning-shard rule
// depends on it — a position mutated before the Delete would route the
// removal to the wrong grid cell.
func (s *Sharded) Delete(id int64) bool {
	c, err := s.src.Coeff(id)
	if err != nil {
		return false // unreadable page: nothing to match against
	}
	r := s.layout.supportRect(c)
	sh := s.shards[s.shardOf(c.Pos.X, c.Pos.Y)]
	s.epoch.Add(1)
	sh.mu.Lock()
	ok := sh.tree.Delete(r, id)
	sh.mu.Unlock()
	s.epoch.Add(1)
	return ok
}

// Sharded is a drop-in Mutable: Insert/Delete are internally locked.
var _ Mutable = (*Sharded)(nil)
