package abr

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/mesh"
	"repro/internal/retrieval"
	"repro/internal/rtree"
	"repro/internal/wavelet"
)

// planServer builds a retrieval server over n random buildings — the
// same workload shape the retrieval package tests use.
func planServer(t testing.TB, n int, seed int64) *retrieval.Server {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	objs := make([]*wavelet.Decomposition, n)
	for i := 0; i < n; i++ {
		ground := geom.V2(rng.Float64()*900+50, rng.Float64()*900+50)
		s := mesh.RandomBuilding(rng, ground, mesh.DefaultBuildingSpec())
		objs[i] = wavelet.Decompose(int32(i), mesh.BaseMeshFor(s), s, 3)
	}
	store := index.NewStore(objs)
	return retrieval.NewServer(store, index.NewMotionAware(store, index.XYW, rtree.Config{}))
}

// TestPlanTruncationKeepsNearDetail drives the real planner through
// budgeted execution: under a tight budget, truncation along the plan
// keeps near-viewer detail (deep w-bands close in, coarse bands
// everywhere) and withholds only the tail — far regions lose their fine
// bands, not their coarse structure.
func TestPlanTruncationKeepsNearDetail(t *testing.T) {
	srv := planServer(t, 10, 42)
	q := geom.R2(0, 0, 1000, 1000)
	viewer := geom.V2(500, 500)
	subs := PlanViewport(q, viewer, 0.05, 3)

	full := srv.Execute(subs, make(map[int64]bool))
	if len(full.IDs) < 100 {
		t.Fatalf("workload too small: %d coefficients", len(full.IDs))
	}
	budget := int64(len(full.IDs)/3) * wavelet.WireBytes
	resp := srv.ExecuteBudget(subs, make(map[int64]bool), budget)
	if resp.Dropped == 0 {
		t.Fatalf("tight budget did not truncate")
	}

	// Find the first sub-query whose coefficients were (partially)
	// withheld: everything delivered comes from plan positions at or
	// before it. The coarse full-frame coverage lives in the leading
	// cells, so every ring must retain coarse coefficients while only
	// trailing fine bands are cut.
	store := srv.Store()
	coarseLo := 0.05 + (1-0.05)*bandCuts[1]
	var nearFine, farCoarseMissing int
	delivered := make(map[int64]bool, len(resp.IDs))
	for _, id := range resp.IDs {
		delivered[id] = true
		c := index.MustCoeff(store, id)
		if c.Value >= coarseLo && geom.V2(c.Pos.X, c.Pos.Y).Dist(viewer) < 200 {
			nearFine++
		}
	}
	for _, id := range full.IDs {
		if delivered[id] {
			continue
		}
		c := index.MustCoeff(store, id)
		// A withheld coefficient in the top (coarse) band means a region
		// lost its structural layer while finer bands survived elsewhere —
		// the failure mode the ordering exists to prevent. The coarse band
		// is [coarseLo, 1] in plan terms.
		if c.Value >= coarseLo {
			farCoarseMissing++
		}
	}
	if nearFine == 0 {
		t.Fatalf("no near-viewer coarse/fine coefficients delivered under budget")
	}
	if farCoarseMissing > 0 {
		// Only legitimate if the budget was too small to even finish the
		// coarse layers; with a third of the full payload that cannot be
		// the case unless ordering is broken.
		coarseTotal := 0
		for _, id := range full.IDs {
			if index.MustCoeff(store, id).Value >= coarseLo {
				coarseTotal++
			}
		}
		if int64(coarseTotal)*wavelet.WireBytes <= budget {
			t.Fatalf("%d coarse-band coefficients withheld although the budget covered all %d — fine bands were served first",
				farCoarseMissing, coarseTotal)
		}
	}
}
