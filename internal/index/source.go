package index

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/wavelet"
)

// CoefficientSource is the storage abstraction the access methods and the
// serving layers (retrieval, proto, engine) are written against. It is
// extracted from the in-memory Store so the coefficient slab can be
// swapped for other backings (disk/mmap segments, remote shards) without
// touching the index or server code.
//
// Identity contract: global coefficient ids are dense — every id in
// [0, NumCoeffs()) resolves through Coeff, and ID(c.Object, c.Vertex) == id
// for the coefficient Coeff(id) returns. Index builders rely on this to
// enumerate a source without knowing its layout.
//
// Concurrency contract: all methods must be safe for concurrent readers
// once the source is published (the Store satisfies this after
// construction plus any EnsureNeighbors call). Mutating a source's
// coefficients is only legal under the owning index's write exclusion
// (delete from the index, mutate, re-insert).
type CoefficientSource interface {
	// ID returns the global id of a coefficient.
	ID(object, vertex int32) int64
	// Coeff resolves a global id to its coefficient.
	//
	// Pointer-lifetime contract: the returned pointer is valid for
	// immediate use only — read what you need and let go. The in-memory
	// Store hands out pointers into always-resident slabs, which never
	// move, so holding one happens to work there; an out-of-core source
	// (PagedStore) may evict the backing page at any later Coeff call,
	// after which a held pointer reads stale (debug builds: poisoned)
	// data. Callers that need coefficients to stay addressable across a
	// whole frame — the retrieval filter pass and the proto payload
	// encoder — must type-assert the source to PinningSource and read
	// through a frame-scoped Pins set instead.
	//
	// Failure contract: a non-nil error means the coefficient is
	// temporarily unreadable (an out-of-core source lost the backing
	// page to a disk fault — errors.Is(err, ErrPageUnavailable));
	// serving layers degrade by withholding the coefficient, never by
	// crashing. Always-resident sources return a nil error forever.
	// Out-of-range ids are a caller bug, not a storage fault, and panic
	// with a descriptive message on every implementation.
	Coeff(id int64) (*wavelet.Coefficient, error)
	// Neighbors returns the final-mesh neighbor vertex ids of one
	// coefficient (the naive index's "additional information").
	Neighbors(object, vertex int32) []int32
	// Bounds returns the bounding box of all objects.
	Bounds() geom.Rect3
	// NumCoeffs returns the total coefficient count across all objects.
	NumCoeffs() int64
	// NumObjects returns the number of stored objects.
	NumObjects() int
	// BaseVerts returns the base-mesh vertex count shared by the objects
	// (0 for an empty source); the wire handshake announces it.
	BaseVerts() int
	// SizeBytes returns the total serialized payload of the source.
	SizeBytes() int64
}

// PinningSource is a CoefficientSource whose coefficients live on
// evictable pages. Callers that hold coefficients beyond a single Coeff
// call — across a frame's filter pass or payload encode — must read
// them through a frame-scoped Pins set, which keeps every touched page
// resident until Release. The in-memory Store intentionally does NOT
// implement this: serving layers detect paging with a type assertion
// and keep the zero-allocation fast path when it fails.
type PinningSource interface {
	CoefficientSource
	// NewPins returns an empty, reusable frame-scoped pin set.
	NewPins() *Pins
}

// Store implements CoefficientSource; keep the compiler honest.
var _ CoefficientSource = (*Store)(nil)

// MustCoeff resolves a global id through src and panics if the
// coefficient is unreadable. For tests and benchmarks over sources
// known to be fully readable (in-memory stores, fault-free segments);
// serving code must handle the error and withhold instead.
func MustCoeff(src CoefficientSource, id int64) *wavelet.Coefficient {
	c, err := src.Coeff(id)
	if err != nil {
		panic(fmt.Sprintf("index: MustCoeff(%d): %v", id, err))
	}
	return c
}
