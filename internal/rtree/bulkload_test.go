package rtree

import (
	"math/rand"
	"testing"
)

func randomItems(n int, dims int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		switch dims {
		case 2:
			items[i] = Item{Rect: randRect2D(rng, 1000), Data: int64(i)}
		case 3:
			x, y, w := rng.Float64()*1000, rng.Float64()*1000, rng.Float64()
			items[i] = Item{Rect: Box(x, x+rng.Float64()*10, y, y+rng.Float64()*10, w, w), Data: int64(i)}
		default:
			x, y, z, w := rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*100, rng.Float64()
			items[i] = Item{Rect: Box(x, x+5, y, y+5, z, z+5, w, w), Data: int64(i)}
		}
	}
	return items
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := BulkLoad(DefaultConfig(2), nil)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("len=%d height=%d", tr.Len(), tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadSmall(t *testing.T) {
	items := randomItems(7, 2, 1)
	tr := BulkLoad(DefaultConfig(2), items)
	if tr.Len() != 7 || tr.Height() != 1 {
		t.Fatalf("len=%d height=%d", tr.Len(), tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadValidAndComplete(t *testing.T) {
	for _, dims := range []int{2, 3, 4} {
		for _, n := range []int{21, 100, 5000, 20000} {
			items := randomItems(n, dims, int64(n+dims))
			tr := BulkLoad(DefaultConfig(dims), items)
			if tr.Len() != n {
				t.Fatalf("%dD n=%d: len=%d", dims, n, tr.Len())
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("%dD n=%d: %v", dims, n, err)
			}
			seen := make(map[int64]bool, n)
			tr.Scan(func(_ Rect, d int64) bool { seen[d] = true; return true })
			if len(seen) != n {
				t.Fatalf("%dD n=%d: scan saw %d", dims, n, len(seen))
			}
		}
	}
}

func TestBulkLoadQueryMatchesLinearScan(t *testing.T) {
	items := randomItems(8000, 3, 3)
	tr := BulkLoad(DefaultConfig(3), items)
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 100; q++ {
		x0, y0 := rng.Float64()*800, rng.Float64()*800
		query := Box(x0, x0+rng.Float64()*200, y0, y0+rng.Float64()*200, 0, rng.Float64())
		want := map[int64]bool{}
		for _, it := range items {
			if query.intersects(&it.Rect, 3) {
				want[it.Data] = true
			}
		}
		got := tr.Collect(query)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d want %d", q, len(got), len(want))
		}
		for _, d := range got {
			if !want[d] {
				t.Fatalf("query %d: stray item %d", q, d)
			}
		}
	}
}

func TestBulkLoadedTreeSupportsMutation(t *testing.T) {
	items := randomItems(3000, 2, 5)
	tr := BulkLoad(DefaultConfig(2), items)
	// Insert on top of a bulk-loaded tree.
	tr.Insert(Box(1, 2, 1, 2), 999999)
	if tr.Len() != 3001 {
		t.Fatalf("len=%d", tr.Len())
	}
	if got := tr.Collect(Box(1, 2, 1, 2)); !contains(got, 999999) {
		t.Fatal("inserted item lost")
	}
	// Delete items loaded in bulk.
	for i := 0; i < 500; i++ {
		if !tr.Delete(items[i].Rect, items[i].Data) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func contains(xs []int64, v int64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestBulkLoadQueryIONotWorseThanInsertion(t *testing.T) {
	// STR packing should answer small windows with no more node reads than
	// the insertion-built tree (usually fewer).
	items := randomItems(20000, 2, 7)
	bulk := BulkLoad(DefaultConfig(2), items)
	ins := New(DefaultConfig(2))
	for _, it := range items {
		ins.Insert(it.Rect, it.Data)
	}
	rng := rand.New(rand.NewSource(8))
	var bulkIO, insIO int64
	for q := 0; q < 200; q++ {
		x, y := rng.Float64()*950, rng.Float64()*950
		query := Box(x, x+30, y, y+30)
		bulkIO += bulk.SearchCounted(query, func(Rect, int64) bool { return true })
		insIO += ins.SearchCounted(query, func(Rect, int64) bool { return true })
	}
	if bulkIO > insIO {
		t.Errorf("bulk io %d above insertion io %d", bulkIO, insIO)
	}
}

func BenchmarkInsertBuild(b *testing.B) {
	items := randomItems(50000, 3, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(DefaultConfig(3))
		for _, it := range items {
			tr.Insert(it.Rect, it.Data)
		}
	}
}

func BenchmarkBulkLoadBuild(b *testing.B) {
	items := randomItems(50000, 3, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkLoad(DefaultConfig(3), items)
	}
}

func BenchmarkSearchBulkLoaded(b *testing.B) {
	tr := BulkLoad(DefaultConfig(3), randomItems(100000, 3, 10))
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := rng.Float64()*950, rng.Float64()*950
		tr.Count(Box(x, x+20, y, y+20, 0.5, 1.0))
	}
}
