package mesh

import (
	"bytes"
	"strings"
	"testing"
)

func TestOBJRoundtrip(t *testing.T) {
	for name, m := range map[string]*Mesh{
		"octahedron":  Octahedron(),
		"icosahedron": Icosahedron(),
		"box":         Box(),
	} {
		var buf bytes.Buffer
		if err := WriteOBJ(&buf, m); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := ReadOBJ(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if got.NumVerts() != m.NumVerts() || got.NumFaces() != m.NumFaces() {
			t.Fatalf("%s: %d/%d vs %d/%d", name,
				got.NumVerts(), got.NumFaces(), m.NumVerts(), m.NumFaces())
		}
		for i := range m.Verts {
			if got.Verts[i].Dist(m.Verts[i]) > 1e-12 {
				t.Fatalf("%s: vertex %d moved", name, i)
			}
		}
		for i := range m.Faces {
			if got.Faces[i] != m.Faces[i] {
				t.Fatalf("%s: face %d differs", name, i)
			}
		}
	}
}

func TestReadOBJQuadTriangulation(t *testing.T) {
	src := `
# a unit quad
v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
f 1 2 3 4
`
	m, err := ReadOBJ(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFaces() != 2 {
		t.Fatalf("quad produced %d triangles", m.NumFaces())
	}
}

func TestReadOBJSlashCornersAndComments(t *testing.T) {
	src := `
mtllib foo.mtl
o thing
v 0 0 0
v 1 0 0
v 0 1 0
vt 0 0
vn 0 0 1
usemtl green
f 1/1/1 2/1/1 3/1/1
`
	m, err := ReadOBJ(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVerts() != 3 || m.NumFaces() != 1 {
		t.Fatalf("got %d/%d", m.NumVerts(), m.NumFaces())
	}
}

func TestReadOBJNegativeIndices(t *testing.T) {
	src := `
v 0 0 0
v 1 0 0
v 0 1 0
f -3 -2 -1
`
	m, err := ReadOBJ(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Faces[0] != [3]int32{0, 1, 2} {
		t.Fatalf("face = %v", m.Faces[0])
	}
}

func TestReadOBJErrors(t *testing.T) {
	cases := map[string]string{
		"short vertex": "v 1 2\n",
		"bad float":    "v a b c\n",
		"short face":   "v 0 0 0\nv 1 0 0\nf 1 2\n",
		"bad index":    "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 9\n",
		"bad int":      "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 x\n",
		"degenerate":   "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 1 2\n",
		"zero index":   "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 0 1 2\n",
	}
	for name, src := range cases {
		if _, err := ReadOBJ(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestOBJRoundtripSubdivided(t *testing.T) {
	s := Sphere{Radius: 3}
	m, _ := Refine(Octahedron(), s, 3)
	var buf bytes.Buffer
	if err := WriteOBJ(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOBJ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.EulerCharacteristic() != 2 {
		t.Errorf("chi = %d", got.EulerCharacteristic())
	}
	if got.NumFaces() != m.NumFaces() {
		t.Errorf("faces %d vs %d", got.NumFaces(), m.NumFaces())
	}
}
