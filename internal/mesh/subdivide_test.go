package mesh

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestSubdivideCounts(t *testing.T) {
	m := Octahedron()
	for level := 1; level <= 4; level++ {
		fine, splits := Subdivide(m)
		if got, want := fine.NumFaces(), m.NumFaces()*4; got != want {
			t.Fatalf("level %d: faces = %d want %d", level, got, want)
		}
		if got, want := len(splits), m.NumEdges(); got != want {
			t.Fatalf("level %d: splits = %d want edges %d", level, got, want)
		}
		if got, want := fine.NumVerts(), m.NumVerts()+m.NumEdges(); got != want {
			t.Fatalf("level %d: verts = %d want %d", level, got, want)
		}
		if err := fine.Validate(); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		m = fine
	}
}

func TestSubdividePreservesEuler(t *testing.T) {
	for name, base := range map[string]*Mesh{
		"tetrahedron": Tetrahedron(),
		"octahedron":  Octahedron(),
		"icosahedron": Icosahedron(),
		"box":         Box(),
	} {
		m := base
		for level := 0; level < 3; level++ {
			if chi := m.EulerCharacteristic(); chi != 2 {
				t.Errorf("%s level %d: chi = %d", name, level, chi)
			}
			m, _ = Subdivide(m)
		}
	}
}

func TestSubdivideMidpoints(t *testing.T) {
	m := Octahedron()
	fine, splits := Subdivide(m)
	for _, sp := range splits {
		want := m.Verts[sp.Parent.A].Mid(m.Verts[sp.Parent.B])
		if got := fine.Verts[sp.Vertex]; got.Dist(want) > 1e-12 {
			t.Errorf("split vertex %d at %v want midpoint %v", sp.Vertex, got, want)
		}
	}
}

func TestSubdivideKeepsOriginalVertices(t *testing.T) {
	m := Icosahedron()
	fine, _ := Subdivide(m)
	for i, v := range m.Verts {
		if fine.Verts[i] != v {
			t.Fatalf("vertex %d moved during subdivision", i)
		}
	}
}

func TestSubdivideSharedEdgesProduceOneVertex(t *testing.T) {
	m := Octahedron()
	_, splits := Subdivide(m)
	seen := map[Edge]bool{}
	for _, sp := range splits {
		if seen[sp.Parent] {
			t.Fatalf("edge %v split twice", sp.Parent)
		}
		seen[sp.Parent] = true
	}
}

func TestSubdivideFitConvergesToSphere(t *testing.T) {
	s := Sphere{Center: geom.V3(0, 0, 0), Radius: 1}
	m := Octahedron()
	prevErr := math.Inf(1)
	for level := 0; level < 5; level++ {
		// Max distance of face centroids from the sphere measures the
		// approximation error of M^level.
		var worst float64
		for _, f := range m.Faces {
			c := m.Verts[f[0]].Add(m.Verts[f[1]]).Add(m.Verts[f[2]]).Scale(1.0 / 3)
			if d := math.Abs(c.Len() - 1); d > worst {
				worst = d
			}
		}
		if worst >= prevErr {
			t.Fatalf("level %d error %v did not shrink from %v", level, worst, prevErr)
		}
		prevErr = worst
		m, _ = SubdivideFit(m, s)
	}
	if prevErr > 0.01 {
		t.Errorf("level-4 sphere error still %v", prevErr)
	}
}

func TestRefineLevels(t *testing.T) {
	s := Sphere{Radius: 2}
	final, levels := Refine(Octahedron(), s, 3)
	if len(levels) != 3 {
		t.Fatalf("levels = %d", len(levels))
	}
	// Level j of an octahedron has 8·4^j faces and (3/2)·8·4^j edges, so the
	// split counts should be 12, 48, 192.
	want := []int{12, 48, 192}
	for j, sp := range levels {
		if len(sp) != want[j] {
			t.Errorf("level %d splits = %d want %d", j, len(sp), want[j])
		}
	}
	if final.NumFaces() != 8*64 {
		t.Errorf("final faces = %d", final.NumFaces())
	}
	// All fitted vertices lie on the sphere.
	for _, sp := range levels[2] {
		v := final.Verts[sp.Vertex]
		if math.Abs(v.Len()-2) > 1e-12 {
			t.Errorf("vertex %d off sphere: %v", sp.Vertex, v.Len())
		}
	}
}

func TestSphereProject(t *testing.T) {
	s := Sphere{Center: geom.V3(1, 2, 3), Radius: 5}
	p := s.Project(geom.V3(10, 2, 3))
	if p.Dist(geom.V3(6, 2, 3)) > 1e-12 {
		t.Errorf("projection = %v", p)
	}
	// Center projects somewhere on the sphere rather than panicking.
	c := s.Project(s.Center)
	if math.Abs(c.Dist(s.Center)-5) > 1e-12 {
		t.Errorf("center projection at distance %v", c.Dist(s.Center))
	}
}

func TestStarSurfaceStaysStarShaped(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := DefaultBuildingSpec()
	for i := 0; i < 10; i++ {
		s := RandomBuilding(rng, geom.V2(0, 0), spec)
		for j := 0; j < 100; j++ {
			d := geom.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
			if d.Len() == 0 {
				continue
			}
			p := s.Project(s.Center.Add(d))
			// Projecting a surface point is idempotent.
			if q := s.Project(p); q.Dist(p) > 1e-9 {
				t.Fatalf("projection not idempotent: %v vs %v", p, q)
			}
			if p.Sub(s.Center).Len() == 0 {
				t.Fatal("projected point collapsed to center")
			}
		}
	}
}

func TestRandomBuildingReproducible(t *testing.T) {
	a := RandomBuilding(rand.New(rand.NewSource(7)), geom.V2(3, 4), DefaultBuildingSpec())
	b := RandomBuilding(rand.New(rand.NewSource(7)), geom.V2(3, 4), DefaultBuildingSpec())
	if a.Scale != b.Scale || len(a.Harmonics) != len(b.Harmonics) {
		t.Fatal("same seed produced different buildings")
	}
	for i := range a.Harmonics {
		if a.Harmonics[i] != b.Harmonics[i] {
			t.Fatalf("harmonic %d differs", i)
		}
	}
}

func TestBuildingCoefficientDecay(t *testing.T) {
	// The displacement magnitudes introduced by SubdivideFit must shrink
	// across levels (on average): this is what makes coefficient value a
	// proxy for resolution level.
	rng := rand.New(rand.NewSource(11))
	s := RandomBuilding(rng, geom.V2(0, 0), DefaultBuildingSpec())
	m := BaseMeshFor(s)
	var prev float64 = math.Inf(1)
	for level := 0; level < 4; level++ {
		fine, splits := Subdivide(m)
		var sum float64
		for _, sp := range splits {
			midp := fine.Verts[sp.Vertex]
			sum += s.Project(midp).Dist(midp)
		}
		avg := sum / float64(len(splits))
		if avg >= prev {
			t.Fatalf("level %d average displacement %v did not shrink from %v", level, avg, prev)
		}
		prev = avg
		m, _ = SubdivideFit(m, s)
	}
}

func TestBaseMeshForLiesOnSurface(t *testing.T) {
	s := RandomBuilding(rand.New(rand.NewSource(3)), geom.V2(100, 50), DefaultBuildingSpec())
	m := BaseMeshFor(s)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Verts {
		if p := s.Project(v); p.Dist(v) > 1e-9 {
			t.Errorf("base vertex %d off surface by %v", i, p.Dist(v))
		}
	}
	// The building stands at its ground position.
	if c := m.Bounds().Center().XY(); c.Dist(geom.V2(100, 50)) > 5 {
		t.Errorf("building center at %v", c)
	}
}
