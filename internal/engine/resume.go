package engine

import (
	"sync"
	"time"

	"repro/internal/retrieval"
)

// Resume-cache defaults a Registry gives each scene; override with
// Registry.SetResumeCache.
const (
	DefaultResumeCapacity = 1024
	DefaultResumeTTL      = 2 * time.Minute
)

// ResumeEntry is the state of a recently closed session, held so a
// reconnecting client can continue incremental retrieval instead of
// re-fetching its whole window. Seq counts the responses sent over the
// session's lifetime; LastIDs are the deliveries of response Seq, the
// candidates a resume handshake may roll back when the client never
// applied that final frame.
type ResumeEntry struct {
	Session *retrieval.Session
	Seq     int64
	LastIDs []int64
	expires time.Time
}

// ResumeCache is a bounded TTL cache of closed sessions keyed by token.
// Each scene owns one: a token minted while a client was attached to
// scene A can only resume scene A's delivered-set. Put and Take are
// mutex-guarded; both run off the request hot path (connection teardown
// and handshake respectively).
type ResumeCache struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration
	entries  map[uint64]*ResumeEntry
	order    []uint64 // insertion (≈ close-time) order for eviction
}

// NewResumeCache creates a cache holding at most capacity sessions
// (0 disables resumption) for at most ttl.
func NewResumeCache(capacity int, ttl time.Duration) *ResumeCache {
	return &ResumeCache{
		capacity: capacity,
		ttl:      ttl,
		entries:  make(map[uint64]*ResumeEntry),
	}
}

// Put stashes a closed session. With capacity 0 (or a zero token) the
// entry is dropped.
func (c *ResumeCache) Put(token uint64, e *ResumeEntry) {
	if c == nil || c.capacity <= 0 || token == 0 {
		return
	}
	e.expires = time.Now().Add(c.ttl)
	c.mu.Lock()
	defer c.mu.Unlock()
	// Evict expired entries first, then the oldest live one if still full.
	// order may hold tokens already consumed by Take; skip them.
	for len(c.order) > 0 {
		t := c.order[0]
		old, ok := c.entries[t]
		if ok && time.Now().Before(old.expires) && len(c.entries) < c.capacity {
			break
		}
		c.order = c.order[1:]
		delete(c.entries, t)
	}
	c.entries[token] = e
	c.order = append(c.order, token)
}

// Take removes and returns the session for token, if present and fresh.
func (c *ResumeCache) Take(token uint64) (*ResumeEntry, bool) {
	if c == nil || token == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[token]
	if !ok {
		return nil, false
	}
	delete(c.entries, token)
	if time.Now().After(e.expires) {
		return nil, false
	}
	return e, true
}

// Len reports the number of cached sessions (expired entries included
// until evicted).
func (c *ResumeCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
