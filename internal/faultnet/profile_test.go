package faultnet

import (
	"net"
	"testing"
	"time"
)

// TestProfileShapes pins the three schedule shapes at known trace
// offsets.
func TestProfileShapes(t *testing.T) {
	const period = time.Second
	step := &Profile{Kind: ProfileStep, Low: 100, High: 1000, Period: period}
	for _, tc := range []struct {
		at   time.Duration
		want int64
	}{
		{0, 1000},
		{period / 4, 1000},
		{period / 2, 100},
		{3 * period / 4, 100},
		{period, 1000}, // wraps
	} {
		if got := step.RateAt(tc.at); got != tc.want {
			t.Fatalf("step at %v = %d, want %d", tc.at, got, tc.want)
		}
	}

	ramp := &Profile{Kind: ProfileRamp, Low: 100, High: 1100, Period: period}
	if got := ramp.RateAt(0); got != 100 {
		t.Fatalf("ramp at 0 = %d, want 100", got)
	}
	if got := ramp.RateAt(period / 2); got != 600 {
		t.Fatalf("ramp at half period = %d, want 600", got)
	}
	if a, b := ramp.RateAt(period/4), ramp.RateAt(3*period/4); a >= b {
		t.Fatalf("ramp not rising: %d then %d", a, b)
	}

	osc := &Profile{Kind: ProfileOsc, Low: 100, High: 1100, Period: period}
	if got := osc.RateAt(0); got != 600 { // midpoint
		t.Fatalf("osc at 0 = %d, want 600", got)
	}
	if got := osc.RateAt(period / 4); got != 1100 { // crest
		t.Fatalf("osc at quarter period = %d, want 1100", got)
	}
	if got := osc.RateAt(3 * period / 4); got != 100 { // trough
		t.Fatalf("osc at three quarters = %d, want 100", got)
	}
	for d := time.Duration(0); d < 2*period; d += period / 7 {
		if got := osc.RateAt(d); got < 100 || got > 1100 {
			t.Fatalf("osc at %v = %d escapes [100, 1100]", d, got)
		}
	}

	// Degenerate and flat cases.
	flat := &Profile{Low: 100, High: 1000}
	if got := flat.RateAt(time.Hour); got != 1000 {
		t.Fatalf("flat = %d, want 1000", got)
	}
	noPeriod := &Profile{Kind: ProfileOsc, Low: 100, High: 1000}
	if got := noPeriod.RateAt(time.Hour); got != 1000 {
		t.Fatalf("period-less osc = %d, want flat High", got)
	}
}

// TestProfilePhaseShifts pins that Phase advances the trace: a step
// profile phase-shifted by half a period starts in its low half.
func TestProfilePhaseShifts(t *testing.T) {
	p := &Profile{Kind: ProfileStep, Low: 1, High: 2, Period: time.Second, Phase: time.Second / 2}
	if got := p.RateAt(0); got != 1 {
		t.Fatalf("phase-shifted step at 0 = %d, want 1", got)
	}
	if got := p.RateAt(time.Second / 2); got != 2 {
		t.Fatalf("phase-shifted step at half period = %d, want 2", got)
	}
}

// TestProfileSharedEpochAcrossConns pins the redial semantics: two
// connections wrapped at different times share the profile's trace
// epoch, so the second lands mid-trace instead of restarting it.
func TestProfileSharedEpochAcrossConns(t *testing.T) {
	p := &Profile{Kind: ProfileStep, Low: 1, High: 2, Period: time.Hour}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	Wrap(a, Config{Throttle: p}, nil)
	epoch := p.Start()
	Wrap(b, Config{Throttle: p}, nil)
	if got := p.Start(); !got.Equal(epoch) {
		t.Fatalf("second connection moved the trace epoch %v -> %v", epoch, got)
	}
}

func TestValidProfileKind(t *testing.T) {
	for _, kind := range []string{"", ProfileFlat, ProfileStep, ProfileRamp, ProfileOsc} {
		if !ValidProfileKind(kind) {
			t.Fatalf("kind %q rejected", kind)
		}
	}
	if ValidProfileKind("sawtooth") {
		t.Fatal("unknown kind accepted")
	}
}

// TestProfileThrottlesConn drives real bytes through a profiled pipe:
// during the high phase of a generous step profile the transfer must
// finish promptly, proving the schedule (not the fixed throttle) is in
// charge.
func TestProfileThrottlesConn(t *testing.T) {
	p := &Profile{Kind: ProfileStep, Low: 1, High: 1 << 20, Period: time.Hour}
	client, server := net.Pipe()
	defer server.Close()
	fc := Wrap(client, Config{Throttle: p}, nil)
	defer fc.Close()

	go func() {
		buf := make([]byte, 1024)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := fc.Write(make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	// 1 KiB at 1 MiB/s ≈ 1ms; at the Low rate it would sleep ~17 min.
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("write took %v during the high phase", d)
	}
}
