// Query coalescing: the crowd-serving optimization. Concurrent sessions
// whose windows land on the same region at the same resolution band are
// common — viewers flock to landmarks — and each one re-runs an index
// search whose answer is identical. The coalescer singleflights those:
// the first arrival (the leader) runs the search; sessions that arrive
// while it is in flight (followers) wait and adopt the leader's result;
// a completed result lingers for a short window so near-simultaneous
// arrivals that just missed the flight still share it.
//
// Sharing is only correct while the index is provably unchanged, so the
// coalescer reuses the hot cache's two safety checks (see package
// hotcache): exact-query verification (the quantized bucket only bounds
// the table; an entry is adopted only for the identical query floats)
// and seqlock epoch validation (the leader stamps its result with the
// even epoch observed before and after its search; a follower adopts
// only while the index still reports exactly that epoch, re-checked at
// adoption time). An adopted result — ids and replayed node I/O — is
// therefore byte-identical to what the follower's own search would have
// returned. Per-session delivered-set filtering happens downstream in
// the merge loop, so two sessions sharing one index pass still receive
// exactly their own increments.
package retrieval

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
)

// CoalescerConfig tunes the gather window and the bucket quantization.
// The quantization defaults match hotcache.Config so the two layers
// agree on what "the same hot region" means.
type CoalescerConfig struct {
	// Window is how long a completed result lingers for adoption after
	// its search finishes (≤ 0 → 2ms). Within the window, sessions
	// asking the identical query at the unchanged epoch share the
	// result without waiting on each other.
	Window time.Duration
	// CellXY is the spatial quantization cell for the bucket key
	// (≤ 0 → 64 world units).
	CellXY float64
	// BandW is the value-band quantization (≤ 0 → 0.25).
	BandW float64
}

func (c CoalescerConfig) withDefaults() CoalescerConfig {
	if c.Window <= 0 {
		c.Window = 2 * time.Millisecond
	}
	if c.CellXY <= 0 {
		c.CellXY = 64
	}
	if c.BandW <= 0 {
		c.BandW = 0.25
	}
	return c
}

// ckey is the quantized bucket address, mirroring the hotcache key: one
// bucket holds at most one flight, and the exact query lives in the
// flight.
type ckey struct {
	x0, y0, x1, y1 int64
	z0, z1         int64
	w0, w1         int64
}

// flight is one in-progress or lingering shared search. done is closed
// after the result fields (ids, io, ok, epoch) are final; they are
// immutable from then on — followers read them without a lock. ids is
// flight-owned (never aliases a session's scratch). expires is guarded
// by the coalescer mutex.
type flight struct {
	q       index.Query
	done    chan struct{}
	ids     []int64
	io      int64
	epoch   uint64
	ok      bool // result stamped at a stable even epoch; adoptable
	expires time.Time
}

// Coalescer merges concurrent identical window searches into one index
// pass. All methods are safe for concurrent use. The zero Coalescer is
// not usable; call NewCoalescer. One Coalescer serves one index (one
// scene) — epochs from different indexes must never mix.
type Coalescer struct {
	cfg CoalescerConfig

	mu      sync.Mutex
	flights map[ckey]*flight

	routed          atomic.Int64
	led             atomic.Int64
	shared          atomic.Int64
	bypassCollision atomic.Int64
	bypassStale     atomic.Int64
}

// NewCoalescer builds an empty coalescer.
func NewCoalescer(cfg CoalescerConfig) *Coalescer {
	return &Coalescer{cfg: cfg.withDefaults(), flights: make(map[ckey]*flight)}
}

func (co *Coalescer) keyOf(q index.Query) ckey {
	cell, band := co.cfg.CellXY, co.cfg.BandW
	return ckey{
		x0: cquantize(q.Region.Min.X, cell),
		y0: cquantize(q.Region.Min.Y, cell),
		x1: cquantize(q.Region.Max.X, cell),
		y1: cquantize(q.Region.Max.Y, cell),
		z0: cquantize(q.ZMin, cell),
		z1: cquantize(q.ZMax, cell),
		w0: cquantize(q.WMin, band),
		w1: cquantize(q.WMax, band),
	}
}

// do answers one sub-query through the coalescer. e0 is the index epoch
// the caller observed before entering; buf receives the ids (appended,
// like runSearch). It returns the extended buffer, the node I/O to
// replay, and — when the result is known valid at a stable even epoch —
// that epoch and stable=true (the caller may then memoize it further,
// e.g. into the hot cache).
func (co *Coalescer) do(s *Server, q index.Query, e0 uint64, buf []int64, cur *index.Cursor) (ids []int64, io int64, epoch uint64, stable bool) {
	co.routed.Add(1)
	k := co.keyOf(q)
	for {
		co.mu.Lock()
		f := co.flights[k]
		if f == nil {
			// Leader: publish the flight, search, stamp, release.
			f = &flight{q: q, done: make(chan struct{})}
			co.flights[k] = f
			co.mu.Unlock()
			return co.lead(s, f, k, q, e0, buf, cur)
		}
		completed := false
		select {
		case <-f.done:
			completed = true
		default:
		}
		if completed && (f.q != q || (!f.expires.IsZero() && time.Now().After(f.expires))) {
			// The lingering result aged out, or it answers a query the
			// crowd has moved past (a moving flock re-lands in the same
			// bucket every step with fresh floats — the stale flight must
			// not squat on the bucket). Evict it and retry the loop as a
			// prospective leader.
			delete(co.flights, k)
			co.mu.Unlock()
			continue
		}
		if f.q != q {
			// In-flight bucket collision with a different exact query:
			// never wrong, just unshareable — waiting would adopt the
			// wrong answer. Run our own search.
			co.mu.Unlock()
			co.bypassCollision.Add(1)
			return co.selfSearch(s, q, buf, cur)
		}
		co.mu.Unlock()
		<-f.done
		// Adoption check, at adoption time: the result must have been
		// stamped stable AND the index must still be at that exact epoch —
		// otherwise a mutation landed since the leader searched and the
		// shared ids could differ from what our own search would return.
		if f.ok && s.epoch.Epoch() == f.epoch {
			co.shared.Add(1)
			return append(buf, f.ids...), f.io, f.epoch, true
		}
		co.mu.Lock()
		if co.flights[k] == f {
			delete(co.flights, k)
		}
		co.mu.Unlock()
		co.bypassStale.Add(1)
		return co.selfSearch(s, q, buf, cur)
	}
}

// lead runs the leader's search and publishes the outcome. The result
// slice is flight-owned: followers hold references to it after done
// closes, so it must never alias a session's reusable scratch.
func (co *Coalescer) lead(s *Server, f *flight, k ckey, q index.Query, e0 uint64, buf []int64, cur *index.Cursor) ([]int64, int64, uint64, bool) {
	f.ids, f.io = s.runSearch(q, nil, cur)
	e1 := s.epoch.Epoch()
	if e0 == e1 && e0%2 == 0 {
		f.ok, f.epoch = true, e0
	}
	close(f.done)
	co.led.Add(1)
	co.mu.Lock()
	if !f.ok {
		// Unstable result (mutation overlapped the search): followers
		// already waiting will bypass; nobody new should find it.
		if co.flights[k] == f {
			delete(co.flights, k)
		}
	} else {
		f.expires = time.Now().Add(co.cfg.Window)
	}
	co.mu.Unlock()
	return append(buf, f.ids...), f.io, f.epoch, f.ok
}

// selfSearch is the bypass path: an uncoalesced search with its own
// epoch stamp, so bypassed results remain memoizable.
func (co *Coalescer) selfSearch(s *Server, q index.Query, buf []int64, cur *index.Cursor) ([]int64, int64, uint64, bool) {
	e0 := s.epoch.Epoch()
	ids, io := s.runSearch(q, buf, cur)
	e1 := s.epoch.Epoch()
	if e0 == e1 && e0%2 == 0 {
		return ids, io, e0, true
	}
	return ids, io, 0, false
}

// Flush drops every completed lingering flight, ending their adoption
// windows immediately. In-flight searches are untouched (their waiting
// followers still adopt). Benchmarks use it to delimit sharing scopes
// deterministically; servers never need to call it — flights age out on
// their own.
func (co *Coalescer) Flush() {
	co.mu.Lock()
	for k, f := range co.flights {
		select {
		case <-f.done:
			delete(co.flights, k)
		default:
		}
	}
	co.mu.Unlock()
}

// CoalescerStats is a point-in-time snapshot of the coalescer counters.
// Routed == Led + Shared + BypassCollision + BypassStale exactly once
// traffic quiesces: every routed sub-query took exactly one of the four
// paths.
type CoalescerStats struct {
	// Routed counts sub-queries that entered the coalescer.
	Routed int64
	// Led counts searches actually executed against the index by a
	// flight leader.
	Led int64
	// Shared counts sub-queries answered by adopting another session's
	// flight — the index passes saved.
	Shared int64
	// BypassCollision counts sub-queries that ran their own search
	// because their bucket held a flight for a different exact query.
	BypassCollision int64
	// BypassStale counts sub-queries that ran their own search because
	// the flight they waited on was unstable or its epoch had moved.
	BypassStale int64
	// Flights is the current number of in-flight or lingering entries.
	Flights int
}

// Stats snapshots the counters and current flight-table occupancy.
func (co *Coalescer) Stats() CoalescerStats {
	co.mu.Lock()
	flights := len(co.flights)
	co.mu.Unlock()
	return CoalescerStats{
		Routed:          co.routed.Load(),
		Led:             co.led.Load(),
		Shared:          co.shared.Load(),
		BypassCollision: co.bypassCollision.Load(),
		BypassStale:     co.bypassStale.Load(),
		Flights:         flights,
	}
}

// cquantize mirrors hotcache's key quantization, clamping pathological
// floats into a bucket instead of invoking undefined conversion.
func cquantize(v, cell float64) int64 {
	f := math.Floor(v / cell)
	switch {
	case math.IsNaN(f):
		return math.MinInt64
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	}
	return int64(f)
}
